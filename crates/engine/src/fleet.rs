//! Multi-tenant fleet control: one arbiter over many sessions' plans.
//!
//! A single [`AdaptiveEngine`](crate::AdaptiveEngine) adapts greedily,
//! as if its model had the device/edge/cloud hardware to itself. Under
//! multi-tenant traffic that assumption breaks: two co-resident models
//! that both see a degrading backbone both offload to the edge, both
//! observe the resulting contention, and both flee back — the classic
//! oscillation of uncoordinated controllers. The [`FleetController`]
//! closes the loop at fleet scope:
//!
//! - it **owns** one adaptation engine per registered tenant (each a
//!   fork of the attached policy, seeded with the tenant's deployed
//!   plan),
//! - it maintains a [`ResourceLedger`] of per-tier compute commitments
//!   and per-link byte commitments across all tenants,
//! - when one tenant's ingested [`Observation`] triggers a re-partition,
//!   the solve runs against **residual** capacity: shared tiers (edge
//!   and cloud — each model's device is its own hardware) are inflated
//!   by the other tenants' committed load
//!   ([`TierContention`]), so the plan routes around booked capacity
//!   instead of piling on,
//! - one decision may emit **coordinated** updates for several tenants:
//!   when the triggering tenant's new plan overcommits a shared tier,
//!   the lowest-weight co-tenant on that tier is **evicted** from it
//!   (its plan re-solved with the tier removed), making room for the
//!   higher-priority model,
//! - a **global hysteresis budget** (at most `reconfig_budget` plan
//!   changes per `budget_window` ingested observations) plus a
//!   per-tenant cooldown bound how fast the fleet as a whole may
//!   reconfigure, so coordinated tenants cannot thrash.
//!
//! A single-tenant fleet is deliberately degenerate: contention is
//! neutral and the budget/cooldown gates are disabled, so its decisions
//! are bit-identical to a plain per-session controller
//! (`D3Runtime::attach_controller`).
//!
//! Updates for tenants other than the one whose observation triggered
//! the decision are queued in per-tenant **mailboxes**; each session
//! drains its own mailbox at its next `observe`/`adapt`/`poll_fleet`
//! call, so a coordinated eviction reaches the victim session even
//! though the decision happened on another tenant's thread.
//!
//! With session multiplexing ([`crate::stream`]), a *tenant* is a
//! shared pipeline, not an individual session: all sessions of a model
//! multiplex onto one resident stage-pool set, so the fleet governs
//! **aggregate** shared-pipeline traffic — its ledger commitments and
//! evictions apply to the pipeline every attached session rides.
//!
//! ```
//! use d3_engine::{AdaptiveEngine, FleetController, FleetOptions, NoAdapt};
//! use d3_partition::{HpaOptions, Problem};
//! use d3_simnet::{NetworkCondition, TierProfiles};
//! use std::sync::Arc;
//!
//! let g = Arc::new(d3_model::zoo::tiny_cnn(16));
//! let problem = Problem::new(g, &TierProfiles::paper_testbed(),
//!     NetworkCondition::WiFi);
//! let engine = |p: &Problem| {
//!     AdaptiveEngine::new(p.clone(), HpaOptions::paper(), Box::new(NoAdapt))
//! };
//! let mut fleet = FleetController::new(FleetOptions::default());
//! fleet.register("cam-hi", 2.0, engine(&problem)); // higher weight wins
//! fleet.register("cam-lo", 1.0, engine(&problem)); // …evicted first
//! assert_eq!(fleet.tenant_names(), ["cam-hi", "cam-lo"]);
//! ```

use crate::adapt::{AdaptiveEngine, ControlUpdate, Decision, TierContention};
use crate::flow::Mailbox;
use crate::telemetry::Observation;
use d3_simnet::Tier;

/// Fleet-wide arbitration knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetOptions {
    /// The frame period (seconds) each shared tier must sustain — the
    /// capacity denominator of the contention ratio and the overcommit
    /// threshold of the eviction check. Default: 1/30 s (the paper's
    /// 30 FPS workload).
    pub frame_period_s: f64,
    /// Plan changes the whole fleet may apply per
    /// [`budget_window`](Self::budget_window) ingested observations
    /// (the global hysteresis budget). Default 4.
    pub reconfig_budget: u32,
    /// Observations per budget window. Default 64.
    pub budget_window: u32,
    /// After a tenant's plan changes, that tenant holds for this many of
    /// its own ingested observations. Default 8.
    pub cooldown: u32,
}

impl Default for FleetOptions {
    fn default() -> Self {
        Self {
            frame_period_s: 1.0 / 30.0,
            reconfig_budget: 4,
            budget_window: 64,
            cooldown: 8,
        }
    }
}

impl FleetOptions {
    /// The default options (30 FPS capacity, budget 4 per 64
    /// observations, cooldown 8).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the shared-tier capacity (seconds of compute per frame
    /// period).
    ///
    /// # Panics
    ///
    /// Panics when `seconds` is not positive and finite.
    #[must_use]
    pub fn frame_period(mut self, seconds: f64) -> Self {
        assert!(
            seconds > 0.0 && seconds.is_finite(),
            "frame period must be positive"
        );
        self.frame_period_s = seconds;
        self
    }

    /// Sets the global reconfiguration budget per window.
    #[must_use]
    pub fn budget(mut self, reconfigs: u32, window: u32) -> Self {
        assert!(window > 0, "budget window must be positive");
        self.reconfig_budget = reconfigs;
        self.budget_window = window;
        self
    }

    /// Sets the per-tenant cooldown (in that tenant's ingests).
    #[must_use]
    pub fn cooldown(mut self, ingests: u32) -> Self {
        self.cooldown = ingests;
        self
    }
}

/// One tenant's row of the fleet's resource ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantCommit {
    /// The tenant's registered name.
    pub tenant: String,
    /// The tenant's priority weight.
    pub weight: f64,
    /// Compute seconds per frame committed per tier rank.
    pub tier_s: [f64; 3],
    /// Bytes per frame committed per link
    /// (`[device↔edge, edge↔cloud, device↔cloud]`).
    pub link_bytes: [u64; 3],
}

/// A snapshot of the fleet's commitments: per-tier compute and per-link
/// bandwidth, per tenant and in total.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceLedger {
    /// The capacity denominator (seconds per frame period).
    pub capacity_s: f64,
    /// One row per tenant, in registration order.
    pub commits: Vec<TenantCommit>,
}

impl ResourceLedger {
    /// Total committed compute seconds per frame on `tier`.
    #[must_use]
    pub fn tier_committed_s(&self, tier: Tier) -> f64 {
        self.commits.iter().map(|c| c.tier_s[tier.rank()]).sum()
    }

    /// Total committed bytes per frame on the link between `a` and `b`
    /// (`None` within a tier).
    #[must_use]
    pub fn link_committed_bytes(&self, a: Tier, b: Tier) -> Option<u64> {
        let link = a.link_index(b)?;
        Some(self.commits.iter().map(|c| c.link_bytes[link]).sum())
    }

    /// Shared tiers whose total commitment exceeds the capacity.
    #[must_use]
    pub fn overcommitted(&self) -> Vec<Tier> {
        [Tier::Edge, Tier::Cloud]
            .into_iter()
            .filter(|t| self.tier_committed_s(*t) > self.capacity_s)
            .collect()
    }
}

/// One arbitration outcome: which tenant must apply which update.
#[derive(Debug, Clone)]
pub struct FleetUpdate {
    /// The tenant whose running session must apply the update.
    pub tenant: String,
    /// The update to apply (`StreamSession::apply_plan` /
    /// `resize_pool`, or `observe`/`adapt` do it automatically).
    pub update: ControlUpdate,
}

struct Tenant {
    name: String,
    weight: f64,
    engine: AdaptiveEngine,
    cooldown_left: u32,
    plan_changes: u64,
    /// Coordinated updates waiting for this tenant's session (see
    /// [`crate::flow::Mailbox`]): plans post as *supersedable* so the
    /// tenant's own next plan change can drop the stale ones, pool
    /// resizes as durable.
    mailbox: Mailbox<ControlUpdate>,
}

/// The multi-tenant arbiter: owns every registered tenant's adaptation
/// engine and turns each ingested [`Observation`] into zero or more
/// coordinated [`FleetUpdate`]s (see the [module docs](self)).
pub struct FleetController {
    options: FleetOptions,
    tenants: Vec<Tenant>,
    /// Observations ingested (the budget-window clock).
    ingests: u64,
    /// Plan changes spent in the current budget window.
    window_spent: u32,
    /// Decisions that emitted updates for more than one tenant.
    pub arbitrations: u64,
    /// Evictions of a lower-weight tenant from an overcommitted tier.
    pub evictions: u64,
    /// Plan changes withheld by the exhausted global budget.
    pub held_by_budget: u64,
    /// Plan changes withheld by a tenant's cooldown.
    pub held_by_cooldown: u64,
}

impl std::fmt::Debug for FleetController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetController")
            .field("tenants", &self.tenant_names())
            .field("ingests", &self.ingests)
            .field("arbitrations", &self.arbitrations)
            .field("evictions", &self.evictions)
            .field("held_by_budget", &self.held_by_budget)
            .field("held_by_cooldown", &self.held_by_cooldown)
            .finish()
    }
}

impl FleetController {
    /// An empty fleet under `options`.
    #[must_use]
    pub fn new(options: FleetOptions) -> Self {
        Self {
            options,
            tenants: Vec::new(),
            ingests: 0,
            window_spent: 0,
            arbitrations: 0,
            evictions: 0,
            held_by_budget: 0,
            held_by_cooldown: 0,
        }
    }

    /// Registers a tenant: its adaptation engine (seeded with the
    /// deployed plan) and its priority weight — higher weights win
    /// contention, lower weights get evicted first. Re-registering a
    /// name replaces the tenant.
    ///
    /// # Panics
    ///
    /// Panics when `weight` is not positive and finite.
    pub fn register(&mut self, name: impl Into<String>, weight: f64, engine: AdaptiveEngine) {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "tenant weight must be positive"
        );
        let name = name.into();
        let tenant = Tenant {
            name: name.clone(),
            weight,
            engine,
            cooldown_left: 0,
            plan_changes: 0,
            mailbox: Mailbox::new(),
        };
        match self.tenants.iter_mut().find(|t| t.name == name) {
            Some(slot) => *slot = tenant,
            None => self.tenants.push(tenant),
        }
    }

    /// Registered tenant names, in registration order.
    #[must_use]
    pub fn tenant_names(&self) -> Vec<&str> {
        self.tenants.iter().map(|t| t.name.as_str()).collect()
    }

    /// The named tenant's adaptation engine (read-only).
    #[must_use]
    pub fn engine(&self, tenant: &str) -> Option<&AdaptiveEngine> {
        self.tenants
            .iter()
            .find(|t| t.name == tenant)
            .map(|t| &t.engine)
    }

    /// Plan changes applied to the named tenant so far.
    #[must_use]
    pub fn plan_changes(&self, tenant: &str) -> Option<u64> {
        self.tenants
            .iter()
            .find(|t| t.name == tenant)
            .map(|t| t.plan_changes)
    }

    /// A snapshot of every tenant's tier and link commitments.
    #[must_use]
    pub fn ledger(&self) -> ResourceLedger {
        ResourceLedger {
            capacity_s: self.options.frame_period_s,
            commits: self
                .tenants
                .iter()
                .map(|t| TenantCommit {
                    tenant: t.name.clone(),
                    weight: t.weight,
                    tier_s: t.engine.committed_s(),
                    link_bytes: t.engine.committed_link_bytes(),
                })
                .collect(),
        }
    }

    /// Takes everything queued for `tenant` by other tenants' decisions
    /// (coordinated updates — e.g. an eviction — waiting for the
    /// tenant's session to apply them).
    pub fn take_mailbox(&mut self, tenant: &str) -> Vec<ControlUpdate> {
        self.tenants
            .iter_mut()
            .find(|t| t.name == tenant)
            .map(|t| t.mailbox.take())
            .unwrap_or_default()
    }

    /// The contention the named tenant solves under: shared tiers (edge,
    /// cloud) inflated by the *other* tenants' committed load over the
    /// frame-period capacity. The device tier is each model's own
    /// hardware and never contended. Neutral for a single-tenant fleet.
    fn contention_excluding(&self, idx: usize) -> TierContention {
        let mut contention = TierContention::neutral();
        if self.tenants.len() < 2 {
            return contention;
        }
        for tier in [Tier::Edge, Tier::Cloud] {
            let others: f64 = self
                .tenants
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != idx)
                .map(|(_, t)| t.engine.committed_s()[tier.rank()])
                .sum();
            contention.factors[tier.rank()] = 1.0 + others / self.options.frame_period_s;
        }
        contention
    }

    /// Ingests one observation on behalf of `tenant` and arbitrates.
    /// Returns every update this decision produced — the first entry
    /// (when present) targets the ingesting tenant; updates for *other*
    /// tenants (coordinated evictions) are also queued in their
    /// mailboxes, so their sessions pick them up independently.
    ///
    /// # Panics
    ///
    /// Panics when `tenant` is not registered.
    pub fn ingest(&mut self, tenant: &str, obs: &Observation) -> Vec<FleetUpdate> {
        let idx = self
            .tenants
            .iter()
            .position(|t| t.name == tenant)
            .unwrap_or_else(|| panic!("unknown fleet tenant {tenant:?}"));

        // Budget-window clock: replenish at every window boundary.
        if self
            .ingests
            .is_multiple_of(u64::from(self.options.budget_window))
        {
            self.window_spent = 0;
        }
        self.ingests += 1;

        let multi = self.tenants.len() > 1;
        let tenant_state = &mut self.tenants[idx];
        let cooling = tenant_state.cooldown_left > 0;
        if cooling {
            tenant_state.cooldown_left -= 1;
        }
        let budget_spent = self.window_spent >= self.options.reconfig_budget;
        // Single-tenant fleets never gate: they must decide exactly like
        // a plain per-session controller.
        let allow_plan = !multi || (!cooling && !budget_spent);

        let Some(decision) = tenant_state.engine.absorb_and_decide(obs) else {
            return Vec::new(); // invalid reading or calibration sample
        };
        // Codec switches ride the plan gate: like a re-partition they
        // change what the tenant's traffic looks like to everyone else
        // (the ledger's on-wire bytes), so they respect the same
        // cooldown and budget. A withheld switch re-proposes itself —
        // the `CodecSwitcher` reads engagement from the live problem,
        // which only `execute` updates.
        let wants_plan = matches!(
            decision,
            Decision::Local(_) | Decision::Full | Decision::SwitchCodec { .. }
        );
        if wants_plan && !allow_plan {
            // Withheld without touching the hysteresis references: the
            // same drift re-triggers once the gate lifts.
            if budget_spent {
                self.held_by_budget += 1;
            } else {
                self.held_by_cooldown += 1;
            }
            return Vec::new();
        }
        // Contention is only consulted by re-partition solves, and
        // computing it walks every co-tenant's plan — keep it off the
        // (overwhelmingly common) hold/resize path.
        let contention = if wants_plan && multi {
            self.contention_excluding(idx)
        } else {
            TierContention::neutral()
        };
        let update = self.tenants[idx].engine.execute(decision, obs, &contention);

        let mut out = Vec::new();
        if let Some(update) = update {
            let planned = matches!(update, ControlUpdate::Plan(_));
            if planned {
                let tenant_state = &mut self.tenants[idx];
                tenant_state.plan_changes += 1;
                // A tenant's engine state is linear, so this plan change
                // supersedes any plan update still waiting in its
                // mailbox (queued by an earlier arbitration but not yet
                // applied by the session): applying the stale one later
                // would revert the pipeline to a plan the engine has
                // already moved past. Pool resizes stay — they are
                // orthogonal to the plan (posted as non-supersedable).
                tenant_state.mailbox.supersede();
                if multi {
                    tenant_state.cooldown_left = self.options.cooldown;
                    self.window_spent += 1;
                }
            } else if matches!(update, ControlUpdate::Codec(_)) && multi {
                // A codec switch spends the same reconfiguration budget
                // as a plan change (it rode the plan gate), but it never
                // supersedes a queued plan — the two are orthogonal.
                let tenant_state = &mut self.tenants[idx];
                tenant_state.cooldown_left = self.options.cooldown;
                self.window_spent += 1;
            }
            out.push(FleetUpdate {
                tenant: self.tenants[idx].name.clone(),
                update,
            });
            if planned && multi {
                out.extend(self.arbitrate(idx));
            }
        }
        if out.len() > 1 {
            self.arbitrations += 1;
        }
        out
    }

    /// After a plan change by `caller`, checks the shared tiers for
    /// overcommitment and evicts the lowest-weight co-tenant from each
    /// overcommitted tier (only when it outranks the caller's weight —
    /// no tenant is evicted to serve a lower-priority one).
    fn arbitrate(&mut self, caller: usize) -> Vec<FleetUpdate> {
        let mut out = Vec::new();
        let caller_weight = self.tenants[caller].weight;
        for tier in [Tier::Edge, Tier::Cloud] {
            let rank = tier.rank();
            let total: f64 = self
                .tenants
                .iter()
                .map(|t| t.engine.committed_s()[rank])
                .sum();
            if total <= self.options.frame_period_s {
                continue;
            }
            // Victim: the lowest-weight other tenant with load on the
            // tier, and strictly below the caller's priority.
            let victim = self
                .tenants
                .iter()
                .enumerate()
                .filter(|(i, t)| {
                    *i != caller && t.engine.committed_s()[rank] > 0.0 && t.weight < caller_weight
                })
                .min_by(|(_, a), (_, b)| a.weight.total_cmp(&b.weight))
                .map(|(i, _)| i);
            let Some(victim) = victim else {
                continue;
            };
            if self.window_spent >= self.options.reconfig_budget {
                self.held_by_budget += 1;
                continue;
            }
            let contention = self.contention_excluding(victim);
            let Some(plan) = self.tenants[victim].engine.evict_from(tier, &contention) else {
                continue;
            };
            self.evictions += 1;
            self.window_spent += 1;
            let tenant = &mut self.tenants[victim];
            tenant.plan_changes += 1;
            tenant.cooldown_left = self.options.cooldown;
            let update = ControlUpdate::Plan(plan);
            tenant.mailbox.post(update.clone(), true);
            out.push(FleetUpdate {
                tenant: tenant.name.clone(),
                update,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapt::HysteresisLocal;
    use d3_model::zoo;
    use d3_partition::{EvenSplit, HpaOptions, Partitioner, Problem};
    use d3_simnet::{NetworkCondition, TierProfiles};

    fn engine(seed_graph: &d3_model::DnnGraph) -> AdaptiveEngine {
        let p = Problem::new(
            seed_graph,
            &TierProfiles::paper_testbed(),
            NetworkCondition::WiFi,
        );
        let a = EvenSplit.partition(&p).unwrap();
        AdaptiveEngine::with_assignment(
            p,
            a,
            HpaOptions::paper(),
            Box::new(HysteresisLocal::default()),
        )
    }

    fn net(mbps: f64) -> Observation {
        Observation::Network {
            net: NetworkCondition::custom_backbone(mbps),
        }
    }

    #[test]
    fn single_tenant_fleet_matches_plain_engine_exactly() {
        let g = zoo::chain_cnn(6, 8, 16);
        let mut plain = engine(&g);
        let mut fleet = FleetController::new(FleetOptions::new().budget(1, 4).cooldown(16));
        fleet.register("solo", 1.0, engine(&g));
        // A trace that would blow through the (tiny) budget if gating
        // applied — single-tenant fleets must not gate.
        for mbps in [31.53, 4.0, 31.53, 3.0, 45.0, 2.0, 31.53] {
            let obs = net(mbps);
            let plain_update = plain.ingest(&obs);
            let fleet_updates = fleet.ingest("solo", &obs);
            assert_eq!(plain_update.is_some(), !fleet_updates.is_empty());
            assert_eq!(
                fleet.engine("solo").unwrap().assignment().tiers(),
                plain.assignment().tiers(),
                "single-tenant fleet diverged from the plain engine"
            );
        }
        let solo = fleet.engine("solo").unwrap();
        assert_eq!(solo.full_updates, plain.full_updates);
        assert_eq!(solo.local_updates, plain.local_updates);
        assert_eq!(solo.suppressed, plain.suppressed);
        assert_eq!(fleet.held_by_budget + fleet.held_by_cooldown, 0);
    }

    #[test]
    fn ledger_sums_tenant_commitments() {
        let g = zoo::chain_cnn(6, 8, 16);
        let mut fleet = FleetController::new(FleetOptions::new());
        fleet.register("a", 1.0, engine(&g));
        fleet.register("b", 2.0, engine(&g));
        let ledger = fleet.ledger();
        assert_eq!(ledger.commits.len(), 2);
        for tier in Tier::ALL {
            let total: f64 = ledger.commits.iter().map(|c| c.tier_s[tier.rank()]).sum();
            assert!((ledger.tier_committed_s(tier) - total).abs() < 1e-12);
        }
        // Even split forces crossings, so some link carries bytes.
        assert!(
            ledger
                .link_committed_bytes(Tier::Device, Tier::Edge)
                .unwrap()
                > 0
        );
        assert_eq!(ledger.link_committed_bytes(Tier::Edge, Tier::Edge), None);
    }

    #[test]
    fn budget_gates_plan_changes_and_replenishes() {
        let g = zoo::chain_cnn(6, 8, 16);
        // Two tenants, budget of 1 plan change per window of 4 ingests,
        // no cooldown so only the budget gates.
        let mut fleet = FleetController::new(FleetOptions::new().budget(1, 4).cooldown(0));
        fleet.register("a", 1.0, engine(&g));
        fleet.register("b", 1.0, engine(&g));
        // a's collapse consumes the window's budget…
        assert!(!fleet.ingest("a", &net(2.0)).is_empty());
        // …so b's equally drastic drift is held.
        assert!(fleet.ingest("b", &net(2.0)).is_empty());
        assert_eq!(fleet.held_by_budget, 1);
        // Burn through the rest of the window; the next window
        // replenishes and b's still-standing drift re-triggers.
        let _ = fleet.ingest("a", &net(2.1));
        let _ = fleet.ingest("b", &net(2.1));
        assert!(!fleet.ingest("b", &net(2.0)).is_empty());
    }

    #[test]
    fn eviction_picks_the_lowest_weight_tenant() {
        let g = zoo::chain_cnn(6, 8, 16);
        // A microscopic frame period guarantees any shared-tier load is
        // an overcommit, forcing the eviction path.
        let mut fleet = FleetController::new(
            FleetOptions::new()
                .frame_period(1e-7)
                .cooldown(0)
                .budget(8, 64),
        );
        fleet.register("lo", 1.0, engine(&g));
        fleet.register("mid", 2.0, engine(&g));
        fleet.register("hi", 3.0, engine(&g));
        let updates = fleet.ingest("hi", &net(2.0));
        assert!(
            updates.iter().any(|u| u.tenant == "hi"),
            "the triggering tenant repartitions"
        );
        assert!(fleet.evictions >= 1, "overcommit must evict");
        // The first eviction (edge) targets the lowest weight; a second
        // overcommitted tier may then evict the next-lowest, but never
        // the high-priority caller.
        let victims: Vec<&str> = updates
            .iter()
            .filter(|u| u.tenant != "hi")
            .map(|u| u.tenant.as_str())
            .collect();
        assert_eq!(
            victims.first(),
            Some(&"lo"),
            "the lowest-weight tenant is evicted first, got {victims:?}"
        );
        // The victim's update waits in its mailbox.
        assert!(!fleet.take_mailbox("lo").is_empty());
        assert!(fleet.take_mailbox("lo").is_empty(), "mailbox drains once");
        assert!(fleet.arbitrations >= 1);
    }

    #[test]
    fn own_plan_change_supersedes_stale_mailbox_plans() {
        // An eviction sits undelivered in the victim's mailbox; before
        // its session polls, the victim's own observation triggers a
        // fresh re-partition (solved from the post-eviction engine
        // state). The stale mailbox plan must be dropped — applying it
        // afterwards would revert the pipeline to a plan the engine has
        // already moved past.
        let g = zoo::chain_cnn(6, 8, 16);
        let mut fleet = FleetController::new(
            FleetOptions::new()
                .frame_period(1e-7)
                .cooldown(0)
                .budget(16, 64),
        );
        fleet.register("lo", 1.0, engine(&g));
        fleet.register("hi", 2.0, engine(&g));
        let updates = fleet.ingest("hi", &net(2.0));
        assert!(
            updates.iter().any(|u| u.tenant == "lo"),
            "hi's collapse evicts lo"
        );
        // lo's own drift triggers before its session drained the
        // mailbox: one of its vertices becomes 1000x slower on its
        // current tier, forcing a local repair that actually moves it.
        let engine = fleet.engine("lo").unwrap();
        let input = engine.graph().input();
        let (vertex, tier) = Tier::ALL
            .into_iter()
            .find_map(|t| {
                engine
                    .assignment()
                    .segment(t)
                    .into_iter()
                    .find(|&id| id != input)
                    .map(|id| (id, t))
            })
            .expect("lo's plan places layers somewhere");
        let seconds = engine.problem().vertex_time(vertex, tier) * 1e3;
        let own = fleet.ingest(
            "lo",
            &Observation::VertexTime {
                vertex,
                tier,
                seconds,
            },
        );
        assert!(
            own.iter().any(|u| u.tenant == "lo"),
            "lo repartitions on its own drift: {own:?}"
        );
        assert!(
            fleet.take_mailbox("lo").is_empty(),
            "the superseded eviction must not survive in the mailbox"
        );
    }

    #[test]
    fn contention_inflates_only_shared_tiers() {
        let g = zoo::chain_cnn(6, 8, 16);
        let mut fleet = FleetController::new(FleetOptions::new());
        fleet.register("a", 1.0, engine(&g));
        fleet.register("b", 1.0, engine(&g));
        let contention = fleet.contention_excluding(0);
        assert_eq!(contention.factors[Tier::Device.rank()], 1.0);
        assert!(contention.factors[Tier::Edge.rank()] >= 1.0);
        assert!(contention.factors[Tier::Cloud.rank()] >= 1.0);
        // b has edge/cloud load under the even split, so a's view of
        // those tiers is strictly inflated.
        assert!(
            contention.factors[Tier::Edge.rank()] > 1.0
                || contention.factors[Tier::Cloud.rank()] > 1.0
        );
    }

    #[test]
    #[should_panic(expected = "unknown fleet tenant")]
    fn unknown_tenant_panics() {
        let mut fleet = FleetController::new(FleetOptions::new());
        let _ = fleet.ingest("ghost", &net(10.0));
    }
}
