//! Wire format for tensors crossing node boundaries.
//!
//! The paper's implementation moves intermediate feature maps between
//! nodes with gRPC (§IV). This module is the stand-in transport encoding:
//! a tiny length-prefixed little-endian codec over [`bytes::Bytes`]. The
//! engine's distributed executor ships every inter-node tensor through
//! it, so serialization is exercised on the real data path (and its
//! size-on-wire is what the communication accounting measures).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use d3_tensor::Tensor;

/// Magic tag guarding against stream corruption.
const MAGIC: u32 = 0xD3D3_0001;

/// Errors from [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Buffer ended prematurely.
    Truncated,
    /// Magic tag mismatch.
    BadMagic,
    /// Header declares an implausible payload.
    BadHeader,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated tensor frame"),
            WireError::BadMagic => write!(f, "bad magic tag"),
            WireError::BadHeader => write!(f, "inconsistent tensor header"),
        }
    }
}

impl std::error::Error for WireError {}

/// Serializes a tensor: magic, shape (c, h, w as u32), payload f32s.
pub fn encode(t: &Tensor) -> Bytes {
    let (c, h, w) = t.shape();
    let mut buf = BytesMut::with_capacity(16 + t.data().len() * 4);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(c as u32);
    buf.put_u32_le(h as u32);
    buf.put_u32_le(w as u32);
    for &v in t.data() {
        buf.put_f32_le(v);
    }
    buf.freeze()
}

/// Size on the wire of a tensor, in bytes (header + payload).
pub fn wire_size(t: &Tensor) -> u64 {
    16 + t.data().len() as u64 * 4
}

/// Deserializes a tensor.
///
/// # Errors
///
/// See [`WireError`].
pub fn decode(mut buf: Bytes) -> Result<Tensor, WireError> {
    if buf.remaining() < 16 {
        return Err(WireError::Truncated);
    }
    if buf.get_u32_le() != MAGIC {
        return Err(WireError::BadMagic);
    }
    let (c, h, w) = (
        buf.get_u32_le() as usize,
        buf.get_u32_le() as usize,
        buf.get_u32_le() as usize,
    );
    let n = c
        .checked_mul(h)
        .and_then(|x| x.checked_mul(w))
        .ok_or(WireError::BadHeader)?;
    if buf.remaining() != n * 4 {
        return Err(WireError::Truncated);
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(buf.get_f32_le());
    }
    Ok(Tensor::from_vec(c, h, w, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact() {
        let t = Tensor::random(3, 5, 7, 42);
        let decoded = decode(encode(&t)).unwrap();
        assert_eq!(decoded, t, "wire transport must be bit-exact (lossless)");
    }

    #[test]
    fn wire_size_matches_encoding() {
        let t = Tensor::random(2, 4, 4, 1);
        assert_eq!(encode(&t).len() as u64, wire_size(&t));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = encode(&Tensor::random(1, 3, 3, 0));
        let cut = bytes.slice(0..bytes.len() - 1);
        assert_eq!(decode(cut), Err(WireError::Truncated));
        assert_eq!(
            decode(Bytes::from_static(&[1, 2])),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn rejects_bad_magic() {
        let mut raw = encode(&Tensor::zeros(1, 1, 1)).to_vec();
        raw[0] ^= 0xFF;
        assert_eq!(decode(Bytes::from(raw)), Err(WireError::BadMagic));
    }

    #[test]
    fn special_values_survive() {
        let t = Tensor::from_vec(
            1,
            1,
            5,
            vec![0.0, -0.0, f32::MIN_POSITIVE, f32::MAX, -1.5e-30],
        );
        let d = decode(encode(&t)).unwrap();
        assert_eq!(d.data(), t.data());
    }
}
