//! Wire format for tensors crossing node boundaries.
//!
//! The paper's implementation moves intermediate feature maps between
//! nodes with gRPC (§IV). This module is the stand-in transport encoding:
//! a tiny length-prefixed little-endian codec over [`bytes::Bytes`]. The
//! engine's distributed executor ships every inter-node tensor through
//! it, so serialization is exercised on the real data path (and its
//! size-on-wire is what the communication accounting measures).

//!
//! It is also where the transport's *timing* primitives live: the
//! simulated per-link serialization delay ([`shaped_delay`]) that the
//! streaming pipeline's link shaping sleeps, and the inverse
//! ([`measured_mbps`]) the bandwidth prober uses to turn a timestamped
//! transfer back into a rate estimate for
//! [`Observation::Network`](crate::Observation::Network).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use d3_tensor::Tensor;
use std::time::Duration;

/// Magic tag guarding against stream corruption.
const MAGIC: u32 = 0xD3D3_0001;

/// Errors from [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Buffer ended prematurely.
    Truncated,
    /// Magic tag mismatch.
    BadMagic,
    /// Header declares an implausible payload.
    BadHeader,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated tensor frame"),
            WireError::BadMagic => write!(f, "bad magic tag"),
            WireError::BadHeader => write!(f, "inconsistent tensor header"),
        }
    }
}

impl std::error::Error for WireError {}

/// Serializes a tensor: magic, shape (c, h, w as u32), payload f32s.
pub fn encode(t: &Tensor) -> Bytes {
    let (c, h, w) = t.shape();
    let mut buf = BytesMut::with_capacity(16 + t.data().len() * 4);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(c as u32);
    buf.put_u32_le(h as u32);
    buf.put_u32_le(w as u32);
    for &v in t.data() {
        buf.put_f32_le(v);
    }
    buf.freeze()
}

/// Size on the wire of a tensor, in bytes (header + payload).
pub fn wire_size(t: &Tensor) -> u64 {
    16 + t.data().len() as u64 * 4
}

/// Deserializes a tensor.
///
/// # Errors
///
/// See [`WireError`].
pub fn decode(mut buf: Bytes) -> Result<Tensor, WireError> {
    if buf.remaining() < 16 {
        return Err(WireError::Truncated);
    }
    if buf.get_u32_le() != MAGIC {
        return Err(WireError::BadMagic);
    }
    let (c, h, w) = (
        buf.get_u32_le() as usize,
        buf.get_u32_le() as usize,
        buf.get_u32_le() as usize,
    );
    let n = c
        .checked_mul(h)
        .and_then(|x| x.checked_mul(w))
        .ok_or(WireError::BadHeader)?;
    // Checked: `n * 4` on a hostile header could overflow (a panic in
    // debug builds) — a socket peer must only ever see a typed error.
    if n.checked_mul(4) != Some(buf.remaining()) {
        return Err(WireError::Truncated);
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(buf.get_f32_le());
    }
    Ok(Tensor::from_vec(c, h, w, data))
}

/// Serialization delay of `bytes` crossing a link of `mbps` — the sleep
/// the streaming pipeline's link shaping injects per transfer to
/// simulate a bandwidth-limited wire. Non-finite or non-positive rates
/// mean "unshaped" (the in-process channel's native speed): zero delay.
#[must_use]
pub fn shaped_delay(bytes: u64, mbps: f64) -> Duration {
    if !mbps.is_finite() || mbps <= 0.0 {
        return Duration::ZERO;
    }
    Duration::from_secs_f64(bytes as f64 * 8.0 / (mbps * 1e6))
}

/// The rate estimate of one timestamped transfer: `bytes` observed to
/// take `elapsed` on the wire, in Mbit/s. The elapsed time is clamped to
/// a nanosecond so an instantaneous in-process hop reads as a very fast
/// — but finite, hence valid — link.
#[must_use]
pub fn measured_mbps(bytes: u64, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64().max(1e-9);
    bytes as f64 * 8.0 / (secs * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact() {
        let t = Tensor::random(3, 5, 7, 42);
        let decoded = decode(encode(&t)).unwrap();
        assert_eq!(decoded, t, "wire transport must be bit-exact (lossless)");
    }

    #[test]
    fn wire_size_matches_encoding() {
        let t = Tensor::random(2, 4, 4, 1);
        assert_eq!(encode(&t).len() as u64, wire_size(&t));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = encode(&Tensor::random(1, 3, 3, 0));
        let cut = bytes.slice(0..bytes.len() - 1);
        assert_eq!(decode(cut), Err(WireError::Truncated));
        assert_eq!(
            decode(Bytes::from_static(&[1, 2])),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn rejects_bad_magic() {
        let mut raw = encode(&Tensor::zeros(1, 1, 1)).to_vec();
        raw[0] ^= 0xFF;
        assert_eq!(decode(Bytes::from(raw)), Err(WireError::BadMagic));
    }

    #[test]
    fn shaped_delay_and_measured_mbps_are_inverses() {
        // 1 MB over 8 Mbps = 1 second, and measuring that transfer
        // recovers the rate.
        let d = shaped_delay(1_000_000, 8.0);
        assert!((d.as_secs_f64() - 1.0).abs() < 1e-9);
        let mbps = measured_mbps(1_000_000, d);
        assert!((mbps - 8.0).abs() < 1e-6);
        // Unshaped links sleep nothing; instantaneous hops stay finite.
        assert_eq!(shaped_delay(1 << 20, f64::INFINITY), Duration::ZERO);
        assert!(measured_mbps(1 << 20, Duration::ZERO).is_finite());
    }

    #[test]
    fn special_values_survive() {
        let t = Tensor::from_vec(
            1,
            1,
            5,
            vec![0.0, -0.0, f32::MIN_POSITIVE, f32::MAX, -1.5e-30],
        );
        let d = decode(encode(&t)).unwrap();
        assert_eq!(d.data(), t.data());
    }
}
