//! # d3-engine
//!
//! The online execution engine of the D3 reproduction (§III-B "online
//! execution engine" and §IV of the paper):
//!
//! - [`pipeline`]: discrete-event simulation of the device→edge→cloud
//!   pipeline under a 30 FPS frame stream (the paper's workload), with
//!   queueing, bottleneck and utilization accounting,
//! - [`deploy`]: turns a tier [`d3_partition::Assignment`] into pipeline
//!   stages — including VSM tile-parallel edge stages — and implements
//!   every evaluation [`Strategy`] (device/edge/cloud-only, Neurosurgeon,
//!   DADS, HPA, HPA+VSM),
//! - [`distributed`]: *functional* execution across three real threads
//!   connected by channels and a wire codec ([`wire`]), proving the
//!   lossless claim end to end,
//! - [`stream`]: the *pipelined* streaming executor — the plan's tier
//!   segments become long-lived worker threads behind bounded queues, so
//!   measured throughput/latency/utilization come back in the same
//!   [`StreamStats`] shape the simulator predicts; running pipelines
//!   emit live telemetry and swap plans mid-stream
//!   ([`StreamPipeline::apply_plan`]) without dropping frames,
//! - [`codec`]: compressed + quantized wire codecs at the stage
//!   boundary — a bit-exact byte-plane/delta/RLE path and opt-in
//!   f16/i8 quantization with accuracy-delta accounting, expressed to
//!   the partitioner as per-link [`d3_partition::CodecProfile`]s so
//!   compression moves split points,
//! - [`telemetry`]: the unified [`Observation`] surface every
//!   measurement source speaks — live stream stages, the simulator, the
//!   profiler, and out-of-band probes,
//! - [`adapt`]: policy-driven runtime re-partitioning
//!   ([`AdaptivePolicy`]: hysteresis-gated local repair, full re-solve,
//!   or frozen) emitting deployable [`PlanUpdate`]s,
//! - [`link`]: the stage-link abstraction — a [`Link`] trait moving
//!   length-prefixed, codec-aware frames between stages, with the
//!   deterministic in-process channel transport and a real TCP/UDS
//!   transport plus the stage-server side ([`StageHost`]), so a
//!   pipeline can genuinely span processes with crash + retransmit
//!   recovery and deadline-based failover,
//! - [`flow`]: the interleaving-critical flow-control units extracted
//!   from the stream and fleet layers (resequencer, dense-id admission,
//!   batcher, coordination mailbox) — model-checked by the vendored
//!   loomlite checker under the `model` feature — with every timestamp
//!   read through the [`clock`] seam.
//!
//! `ARCHITECTURE.md` at the workspace root maps how these modules
//! stack into the five layers — partition → deploy → stream/flow →
//! adapt/fleet → codec/link — traces a frame's life through the shared
//! pipeline, and indexes which test suite pins which invariant.
//!
//! ## Example
//!
//! ```
//! use d3_engine::{deploy_strategy, Strategy, VsmConfig};
//! use d3_partition::Problem;
//! use d3_simnet::{NetworkCondition, TierProfiles};
//! use d3_model::zoo;
//!
//! let g = zoo::alexnet(224);
//! let p = Problem::new(&g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi);
//! let d3 = deploy_strategy(&p, Strategy::HpaVsm, VsmConfig::default()).unwrap();
//! let device = deploy_strategy(&p, Strategy::DeviceOnly, VsmConfig::default()).unwrap();
//! let speedup = device.paper_stream_latency() / d3.paper_stream_latency();
//! assert!(speedup >= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapt;
pub mod clock;
pub mod codec;
pub mod deploy;
pub mod distributed;
pub mod fleet;
pub mod flow;
pub mod link;
pub mod pipeline;
pub mod stream;
mod sync;
pub mod telemetry;
pub mod wire;

pub use adapt::{
    AdaptiveEngine, AdaptivePolicy, AutoscalePolicy, CodecSwitcher, CodecUpdate, ControlUpdate,
    Decision, FullResolve, HysteresisLocal, NoAdapt, PlanUpdate, PolicyView, PoolUpdate,
    TierContention, UpdateScope,
};
pub use clock::{Clock, Stamp};
pub use codec::{Codec, Encoded, WireCodec};
pub use deploy::{deploy_strategy, Deployment, Strategy, VsmConfig};
pub use distributed::{run_distributed, DistributedError};
pub use fleet::{FleetController, FleetOptions, FleetUpdate, ResourceLedger, TenantCommit};
pub use flow::SessionId;
pub use link::{
    node_from_wire, node_to_wire, remap_frame_payload, Link, LinkAddr, LinkError, LinkListener,
    RemoteOptions, SocketLink, StageHost, WireNodeError,
};
pub use pipeline::{
    bottleneck_s, percentile, render_gantt, simulate_stream, simulate_stream_trace, FrameTrace,
    StageSpec, StreamStats,
};
pub use stream::{
    BatchOptions, FrameId, InjectedDelay, LinkShaping, LinkTraffic, PlanSwap, PoolOptions,
    PoolResize, PoolSize, ProbeOptions, SessionStats, StagePoolStats, StreamBuildError,
    StreamOptions, StreamPipeline, StreamRecvError, StreamReport, SubmitError,
};
pub use telemetry::{
    predicted_observations, profile_observations, Observation, TelemetrySnapshot, TelemetryTap,
};
pub use wire::{decode, encode, measured_mbps, shaped_delay, wire_size, WireError};
