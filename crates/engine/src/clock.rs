//! The clock seam: one sanctioned source of "now" for the whole engine.
//!
//! Every timestamp the engine takes — frame admission instants, probe
//! stamps, busy-time accounting, pool-history boundaries — flows through
//! a [`Clock`] instead of calling `Instant::now()` directly (the
//! `cargo xtask lint` `raw-instant` rule enforces this). Two gains:
//!
//! - **Deterministic tests.** A [`Clock::manual`] clock only moves when
//!   the test advances it, so timing-derived assertions replay exactly
//!   (`d3-test-support`'s `FakeClock` bridges into one).
//! - **Model checking.** Under the `model` feature the loomlite checker
//!   explores thread interleavings; a schedule must behave identically
//!   every time it is replayed, which a wall-clock read would break. The
//!   extracted flow units ([`crate::flow`]) therefore only ever see a
//!   `Clock`.
//!
//! A [`Stamp`] is a point on a clock's timeline: the elapsed time since
//! that clock's epoch. Stamps from the same clock compare and subtract
//! like the `Instant`s they replace; stamps from different clocks are
//! meaningless to mix, exactly like `Instant`s from different machines.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A point on a [`Clock`]'s timeline: elapsed time since its epoch.
/// Subtract with [`Duration::saturating_sub`] — a stamp taken later on
/// the same clock is never smaller, but saturation keeps accidental
/// cross-thread races harmless.
pub type Stamp = Duration;

/// A monotonic time source: the real wall clock anchored at an epoch, or
/// a manually-advanced test clock. Clones share the same timeline.
#[derive(Debug, Clone)]
pub struct Clock(Imp);

#[derive(Debug, Clone)]
enum Imp {
    /// The OS monotonic clock, anchored at construction.
    Real { epoch: Instant },
    /// Test clock: nanoseconds since epoch, advanced externally.
    Manual { now_ns: Arc<AtomicU64> },
}

impl Clock {
    /// A real clock whose epoch is the moment of this call.
    #[must_use]
    pub fn real() -> Self {
        Clock(Imp::Real {
            epoch: Instant::now(),
        })
    }

    /// A manual clock reading `now_ns` nanoseconds-since-epoch. The
    /// caller advances time by bumping the shared atomic; readings are
    /// monotone as long as the atomic only ever grows.
    #[must_use]
    pub fn manual(now_ns: Arc<AtomicU64>) -> Self {
        Clock(Imp::Manual { now_ns })
    }

    /// The current instant on this clock's timeline.
    #[must_use]
    pub fn now(&self) -> Stamp {
        match &self.0 {
            Imp::Real { epoch } => epoch.elapsed(),
            Imp::Manual { now_ns } => Duration::from_nanos(now_ns.load(Ordering::SeqCst)),
        }
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::real()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotone() {
        let clock = Clock::real();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_when_advanced() {
        let handle = Arc::new(AtomicU64::new(0));
        let clock = Clock::manual(handle.clone());
        assert_eq!(clock.now(), Duration::ZERO);
        assert_eq!(clock.now(), Duration::ZERO);
        handle.fetch_add(1_500, Ordering::SeqCst);
        assert_eq!(clock.now(), Duration::from_nanos(1_500));
        // Clones share the timeline.
        assert_eq!(clock.clone().now(), Duration::from_nanos(1_500));
    }
}
