//! Interleaving-critical flow-control units, extracted into
//! model-checkable form.
//!
//! The streaming pipeline ([`crate::stream`]) and the fleet controller
//! ([`crate::fleet`]) each contain a handful of small state machines
//! whose correctness depends on how concurrent threads interleave: the
//! per-stage [`Resequencer`] that restores submission order under pooled
//! workers, the [`Admission`] lock that keeps frame ids dense, the
//! [`SessionMux`] that lets many sessions share one pipeline under
//! weighted-fair admission, the size-or-deadline [`run_batcher`] loop,
//! and the per-tenant [`Mailbox`]
//! with plan supersession. This module isolates them from the tensor
//! machinery around them so the loomlite model checker (`cargo test
//! --features model`) can exhaustively explore their schedules with
//! real multi-thread executions — and so their unit invariants are
//! testable without spinning up a pipeline.
//!
//! Everything here synchronises through [`crate::sync`] (std types
//! normally, loomlite shims under the `model` feature) and reads time
//! only through the [`Clock`] seam, which is what makes a model
//! execution deterministic.
//!
//! The [`SessionMux`] is the newest unit — the state machine behind
//! session multiplexing ([`crate::stream`]'s shared pipelines). It owns
//! the global dense frame-id counter, each session's dense sequence and
//! weighted in-flight quota, and each session's in-order outbox; the
//! pipeline merely calls [`admit`](SessionMux::admit) at the gate,
//! [`route`](SessionMux::route) on completions and
//! [`pop`](SessionMux::pop) on receive:
//!
//! ```
//! use d3_engine::flow::SessionMux;
//! use std::time::Duration;
//!
//! let mux = SessionMux::<&str>::new(4, 0);
//! let a = mux.attach(3.0); // weights 3:1 over capacity 4 → quotas 3 and 1
//! let b = mux.attach(1.0);
//! let ok = |_global: u64, _payload: ()| Ok::<(), ()>(());
//!
//! // Global ids stay dense across sessions (the wire contract);
//! // each session's seq is its own dense 0, 1, 2, …
//! let first = mux.admit(a, Duration::ZERO, (), ok).unwrap();
//! assert_eq!((first.global, first.seq), (0, 0));
//! let second = mux.admit(b, Duration::ZERO, (), ok).unwrap();
//! assert_eq!((second.global, second.seq), (1, 0));
//!
//! // A completion routes to the owning session's in-order outbox.
//! assert!(mux.route(second.global, "b frame 0", Duration::ZERO));
//! assert_eq!(mux.pop(b), Some((0, "b frame 0")));
//! assert_eq!(mux.pop(a), None); // a's frame 0 is still in flight
//! ```

use crate::clock::{Clock, Stamp};
use crate::sync::{self, Mutex};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use std::collections::BTreeMap;
use std::time::Duration;

/// Identifies one attached session of a multiplexed stream. Minted by
/// [`SessionMux::attach`]; dense per mux, never reused within one mux's
/// lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

/// One successful admission through a [`SessionMux`]: the pipeline-wide
/// dense id the frame travels under, and the session's own dense
/// sequence number (what the session sees back on delivery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Minted {
    /// Pipeline-wide dense frame id (global submission order).
    pub global: u64,
    /// The session's own dense sequence number.
    pub seq: u64,
}

/// Why [`SessionMux::admit`] rejected. The untouched payload rides back
/// in the variant (or inside the send error `E`) so backpressure never
/// loses a frame — mirroring [`Admission`], a rejected admission burns
/// neither a global id nor a session sequence number.
#[derive(Debug, PartialEq, Eq)]
pub enum MuxAdmitError<P, E> {
    /// The session was never attached, or has already detached.
    UnknownSession(P),
    /// The session is at its weighted-fair in-flight quota. Routing any
    /// completed frame (even another session's) frees capacity.
    Throttled(P),
    /// The shared ingress queue rejected the send (e.g. channel full);
    /// `E` carries whatever the send handed back.
    Send(E),
}

/// Everything one session's lifetime accumulated, snapshot under the mux
/// lock: the raw material for per-session stats (the stream layer turns
/// latency samples into percentiles).
#[derive(Debug, Clone)]
pub struct SessionTally {
    /// Which session.
    pub session: SessionId,
    /// The session's fair-share weight.
    pub weight: f64,
    /// Frames admitted into the pipeline.
    pub submitted: u64,
    /// Rejected admission attempts (throttled or queue-full); none of
    /// them consumed an id, so retries are invisible to ordering.
    pub rejected: u64,
    /// Frames the session actually received (popped in order).
    pub delivered: u64,
    /// Per-frame delivery latency samples, seconds, in route order.
    pub latency_s: Vec<f64>,
    /// When the session's first frame was admitted.
    pub first_submit: Option<Stamp>,
    /// When the session's latest frame was routed back.
    pub last_delivery: Option<Stamp>,
}

#[derive(Debug)]
struct RouteEntry {
    session: u64,
    seq: u64,
    submitted_at: Stamp,
}

#[derive(Debug)]
struct Slot<T> {
    weight: f64,
    quota: u64,
    next_seq: u64,
    next_recv: u64,
    in_flight: u64,
    outbox: BTreeMap<u64, T>,
    submitted: u64,
    rejected: u64,
    delivered: u64,
    latency_s: Vec<f64>,
    first_submit: Option<Stamp>,
    last_delivery: Option<Stamp>,
}

#[derive(Debug)]
struct MuxState<T> {
    capacity: u64,
    next_global: u64,
    next_session: u64,
    slots: BTreeMap<u64, Slot<T>>,
    routes: BTreeMap<u64, RouteEntry>,
}

/// The session multiplexer: the shared admission gate plus per-session
/// demultiplexer that lets N sessions ride one resident pipeline.
///
/// One lock owns the whole machine — the global dense-id counter (the
/// [`Admission`] role), the per-session slots, the `global id →
/// (session, seq)` route map, and the per-session reorder outboxes — so
/// every transition is atomic under concurrent submitters and receivers:
///
/// - [`admit`](Self::admit) mints `(global, seq)` pairs with the send
///   attempt *inside* the critical section, exactly like [`Admission`]:
///   ids stay dense because a rejected send burns nothing. On top it
///   enforces **weighted-fair admission**: session `i` may hold at most
///   `max(1, floor(capacity · wᵢ / Σw))` frames in flight, so a greedy
///   session cannot crowd the shared ingress queue, and the `max(1, …)`
///   floor keeps every session starvation-free.
/// - [`route`](Self::route) accepts a completed frame *by global id*
///   from whichever thread pulled it off the shared result channel, and
///   files it into the owning session's outbox keyed by the session
///   sequence number. Routing is decoupled from receiving — any session
///   blocked on admission can route other sessions' completions and
///   thereby free its own capacity — which is what makes
///   submit-many-then-drain patterns deadlock-free.
/// - [`pop`](Self::pop) releases a session's next frame only when its
///   dense sequence number is the one expected, i.e. the outbox is a
///   per-session [`Resequencer`] keyed on `(session, seq)`: racing
///   receivers may route one session's frames out of order, and the
///   outbox restores submission order per session.
///
/// In-flight accounting decrements at **route** time (frame parked in
/// the outbox), not at pop: a session that admits `quota` frames and
/// only then starts draining would otherwise deadlock against itself.
#[derive(Debug)]
pub struct SessionMux<T> {
    state: Mutex<MuxState<T>>,
}

impl<T> SessionMux<T> {
    /// An empty mux over a shared ingress of `capacity` frames (the
    /// denominator of the weighted quotas), minting global ids from
    /// `start`.
    #[must_use]
    pub fn new(capacity: usize, start: u64) -> Self {
        Self {
            state: Mutex::new(MuxState {
                capacity: (capacity as u64).max(1),
                next_global: start,
                next_session: 0,
                slots: BTreeMap::new(),
                routes: BTreeMap::new(),
            }),
        }
    }

    /// Attaches a new session with fair-share `weight` (> 0, finite)
    /// and recomputes every session's quota.
    ///
    /// # Panics
    ///
    /// Panics when `weight` is not a positive finite number.
    pub fn attach(&self, weight: f64) -> SessionId {
        assert!(
            weight.is_finite() && weight > 0.0,
            "session weight must be positive and finite, got {weight}"
        );
        let mut st = sync::lock(&self.state);
        let id = st.next_session;
        st.next_session += 1;
        st.slots.insert(
            id,
            Slot {
                weight,
                quota: 1,
                next_seq: 0,
                next_recv: 0,
                in_flight: 0,
                outbox: BTreeMap::new(),
                submitted: 0,
                rejected: 0,
                delivered: 0,
                latency_s: Vec::new(),
                first_submit: None,
                last_delivery: None,
            },
        );
        Self::recompute_quotas(&mut st);
        SessionId(id)
    }

    /// Detaches `sid`, dropping its routes (frames of a detached
    /// session still in the pipeline are discarded on arrival) and
    /// returning its final tally. Remaining sessions' quotas grow to
    /// absorb the freed share.
    pub fn detach(&self, sid: SessionId) -> Option<SessionTally> {
        let mut st = sync::lock(&self.state);
        let slot = st.slots.remove(&sid.0)?;
        st.routes.retain(|_, entry| entry.session != sid.0);
        Self::recompute_quotas(&mut st);
        Some(Self::tally_of(sid, &slot))
    }

    /// One admission attempt for `sid`: enforces the session's weighted
    /// quota, then calls `send` with the next **global** id while
    /// holding the lock. Global id and session sequence are consumed
    /// only when `send` succeeds, so both stay dense across rejections.
    ///
    /// # Errors
    ///
    /// [`MuxAdmitError::Throttled`] (payload back) when the session is
    /// at quota, [`MuxAdmitError::Send`] when the ingress queue
    /// rejected, [`MuxAdmitError::UnknownSession`] for a detached id.
    pub fn admit<P, E>(
        &self,
        sid: SessionId,
        now: Stamp,
        payload: P,
        send: impl FnOnce(u64, P) -> Result<(), E>,
    ) -> Result<Minted, MuxAdmitError<P, E>> {
        let mut st = sync::lock(&self.state);
        let st = &mut *st;
        let global = st.next_global;
        let Some(slot) = st.slots.get_mut(&sid.0) else {
            return Err(MuxAdmitError::UnknownSession(payload));
        };
        if slot.in_flight >= slot.quota {
            slot.rejected += 1;
            return Err(MuxAdmitError::Throttled(payload));
        }
        if let Err(e) = send(global, payload) {
            slot.rejected += 1;
            return Err(MuxAdmitError::Send(e));
        }
        let seq = slot.next_seq;
        slot.next_seq += 1;
        slot.in_flight += 1;
        slot.submitted += 1;
        if slot.first_submit.is_none() {
            slot.first_submit = Some(now);
        }
        st.routes.insert(
            global,
            RouteEntry {
                session: sid.0,
                seq,
                submitted_at: now,
            },
        );
        st.next_global = global + 1;
        Ok(Minted { global, seq })
    }

    /// Files one completed frame (by its global id) into the owning
    /// session's outbox, recording its delivery-latency sample and
    /// freeing one unit of that session's quota. Returns `false` for an
    /// orphan — an id never admitted here, or whose session detached —
    /// which the caller must drop.
    pub fn route(&self, global: u64, item: T, now: Stamp) -> bool {
        let mut st = sync::lock(&self.state);
        let st = &mut *st;
        let Some(entry) = st.routes.remove(&global) else {
            return false;
        };
        let Some(slot) = st.slots.get_mut(&entry.session) else {
            return false;
        };
        slot.in_flight = slot.in_flight.saturating_sub(1);
        slot.latency_s
            .push(now.saturating_sub(entry.submitted_at).as_secs_f64());
        slot.last_delivery = Some(now);
        slot.outbox.insert(entry.seq, item);
        true
    }

    /// Releases `sid`'s next in-order frame, if already routed: the
    /// per-session resequencing point. Returns the session sequence
    /// number with the item.
    pub fn pop(&self, sid: SessionId) -> Option<(u64, T)> {
        let mut st = sync::lock(&self.state);
        let slot = st.slots.get_mut(&sid.0)?;
        let item = slot.outbox.remove(&slot.next_recv)?;
        let seq = slot.next_recv;
        slot.next_recv += 1;
        slot.delivered += 1;
        Some((seq, item))
    }

    /// Frames `sid` has admitted but not yet received (in the pipeline
    /// or parked in its outbox).
    #[must_use]
    pub fn pending(&self, sid: SessionId) -> u64 {
        let st = sync::lock(&self.state);
        st.slots.get(&sid.0).map_or(0, |s| s.next_seq - s.next_recv)
    }

    /// `sid`'s current weighted-fair quota (its in-flight ceiling).
    #[must_use]
    pub fn quota(&self, sid: SessionId) -> Option<u64> {
        sync::lock(&self.state).slots.get(&sid.0).map(|s| s.quota)
    }

    /// The global id the next successful admission will mint — what a
    /// respawned pipeline seeds its stage resequencers from.
    #[must_use]
    pub fn next_id(&self) -> u64 {
        sync::lock(&self.state).next_global
    }

    /// How many sessions are attached.
    #[must_use]
    pub fn attached(&self) -> usize {
        sync::lock(&self.state).slots.len()
    }

    /// The attached sessions, in attach order.
    #[must_use]
    pub fn sessions(&self) -> Vec<SessionId> {
        sync::lock(&self.state)
            .slots
            .keys()
            .map(|&id| SessionId(id))
            .collect()
    }

    /// A snapshot of `sid`'s accounting.
    #[must_use]
    pub fn tally(&self, sid: SessionId) -> Option<SessionTally> {
        let st = sync::lock(&self.state);
        st.slots.get(&sid.0).map(|s| Self::tally_of(sid, s))
    }

    /// Snapshots of every attached session, in attach order.
    #[must_use]
    pub fn tallies(&self) -> Vec<SessionTally> {
        let st = sync::lock(&self.state);
        st.slots
            .iter()
            .map(|(&id, s)| Self::tally_of(SessionId(id), s))
            .collect()
    }

    fn tally_of(sid: SessionId, slot: &Slot<T>) -> SessionTally {
        SessionTally {
            session: sid,
            weight: slot.weight,
            submitted: slot.submitted,
            rejected: slot.rejected,
            delivered: slot.delivered,
            latency_s: slot.latency_s.clone(),
            first_submit: slot.first_submit,
            last_delivery: slot.last_delivery,
        }
    }

    /// `quotaᵢ = max(1, floor(capacity · wᵢ / Σw))`: proportional to
    /// weight, floored at one frame so no session can be starved.
    fn recompute_quotas(st: &mut MuxState<T>) {
        let total: f64 = st.slots.values().map(|s| s.weight).sum();
        if total <= 0.0 {
            return;
        }
        let capacity = st.capacity;
        for slot in st.slots.values_mut() {
            let share = (capacity as f64 * slot.weight / total).floor() as u64;
            slot.quota = share.max(1);
        }
    }
}

/// The reorder point of a pooled stage: workers complete units
/// (contiguous id ranges) out of order; this buffer releases them
/// strictly by ascending id. Ids must be **dense** — `expected` advances
/// by each unit's count, so a gap would stall the stage forever (which
/// is why [`Admission`] never burns an id on a rejected frame).
#[derive(Debug)]
pub struct Resequencer<T> {
    expected: u64,
    buffer: BTreeMap<u64, (usize, T)>,
}

impl<T> Resequencer<T> {
    /// An empty resequencer expecting `start` as the next first-id.
    #[must_use]
    pub fn new(start: u64) -> Self {
        Self {
            expected: start,
            buffer: BTreeMap::new(),
        }
    }

    /// Accepts one completed unit (`count` items whose ids begin at
    /// `first`) and returns every unit now releasable, in order.
    pub fn push(&mut self, first: u64, count: usize, item: T) -> Vec<T> {
        self.buffer.insert(first, (count, item));
        let mut released = Vec::new();
        while let Some((count, item)) = self.buffer.remove(&self.expected) {
            self.expected += count as u64;
            released.push(item);
        }
        released
    }

    /// Flushes whatever is still buffered, in id order. With dense ids
    /// this only holds a tail cut short upstream; releasing it in order
    /// is still the best the stage can do.
    pub fn drain(&mut self) -> Vec<T> {
        let mut released = Vec::new();
        while let Some((_, (_, item))) = self.buffer.pop_first() {
            released.push(item);
        }
        released
    }

    /// The next id the resequencer will release.
    #[must_use]
    pub fn expected(&self) -> u64 {
        self.expected
    }

    /// Units waiting for an earlier id to arrive.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }
}

/// Drives a [`Resequencer`] over a channel of completed units until the
/// senders disconnect, handing each released unit to `deliver` (which
/// returns `false` when downstream is gone and the loop should stop).
pub fn run_resequencer<T>(
    rx: &Receiver<(u64, usize, T)>,
    start: u64,
    mut deliver: impl FnMut(T) -> bool,
) {
    let mut seq = Resequencer::new(start);
    while let Ok((first, count, item)) = rx.recv() {
        for released in seq.push(first, count, item) {
            if !deliver(released) {
                return;
            }
        }
    }
    for released in seq.drain() {
        if !deliver(released) {
            return;
        }
    }
}

/// The dense-id admission lock: mints ids `start, start+1, …` such that
/// an id is consumed **only when its item actually enters the system**.
/// Density is what lets a [`Resequencer`] equate contiguous ids with
/// submission order, so a rejected admission (backpressure) must not
/// burn an id — the send attempt runs *inside* the lock, and the next id
/// only advances on success. The critical section must stay non-blocking
/// (a `try_send`, never a wait) so concurrent admitters cannot convoy.
#[derive(Debug)]
pub struct Admission {
    next: Mutex<u64>,
}

impl Admission {
    /// An admission counter starting at `start`.
    #[must_use]
    pub fn new(start: u64) -> Self {
        Self {
            next: Mutex::new(start),
        }
    }

    /// One admission attempt: calls `send` with the next id while
    /// holding the lock; the id is consumed only when `send` succeeds.
    /// `send`'s error (e.g. the payload handed back on a full queue)
    /// passes through to the caller.
    ///
    /// # Errors
    ///
    /// Whatever `send` returned.
    pub fn admit<E>(&self, send: impl FnOnce(u64) -> Result<(), E>) -> Result<u64, E> {
        let mut next = sync::lock(&self.next);
        let id = *next;
        send(id)?;
        *next += 1;
        Ok(id)
    }

    /// The id the next successful admission will receive — equivalently,
    /// how many admissions have succeeded since `start = 0`.
    #[must_use]
    pub fn next_id(&self) -> u64 {
        *sync::lock(&self.next)
    }
}

/// A per-tenant coordination mailbox: decisions made on other threads
/// queue items here until the owner drains them with [`take`]. An item
/// posted as *supersedable* is dropped by [`supersede`] — the fleet
/// controller uses this when a tenant's **own** plan change outdates an
/// eviction plan still waiting in its mailbox (applying the stale plan
/// later would revert state the decision engine has already moved past),
/// while non-supersedable items (pool resizes) always survive to `take`.
///
/// [`take`]: Mailbox::take
/// [`supersede`]: Mailbox::supersede
#[derive(Debug)]
pub struct Mailbox<T> {
    queue: Mutex<Vec<(T, bool)>>,
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Mailbox<T> {
    /// An empty mailbox.
    #[must_use]
    pub fn new() -> Self {
        Self {
            queue: Mutex::new(Vec::new()),
        }
    }

    /// Queues `item` for the owner. A `supersedable` item is dropped by
    /// the next [`supersede`](Self::supersede) instead of delivered.
    pub fn post(&self, item: T, supersedable: bool) {
        sync::lock(&self.queue).push((item, supersedable));
    }

    /// Drops every supersedable item still queued (a newer decision has
    /// outdated them) and returns how many were dropped.
    pub fn supersede(&self) -> usize {
        let mut queue = sync::lock(&self.queue);
        let before = queue.len();
        queue.retain(|(_, supersedable)| !supersedable);
        before - queue.len()
    }

    /// Takes everything queued, in posting order.
    pub fn take(&self) -> Vec<T> {
        std::mem::take(&mut *sync::lock(&self.queue))
            .into_iter()
            .map(|(item, _)| item)
            .collect()
    }

    /// Whether nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        sync::lock(&self.queue).is_empty()
    }
}

/// A unit the size-or-deadline batcher can coalesce.
pub trait Coalesce {
    /// How many atomic items this unit carries (frames in a batch).
    fn units(&self) -> usize;
    /// Folds `other` into `self`, preserving arrival order.
    fn absorb(&mut self, other: Self);
}

/// The size-or-deadline batch former: units arrive on `rx`; a batch
/// closes when it reaches `max_units` or when `deadline` elapses after
/// its first unit (the classic rule — a trickle never stalls), then
/// ships on `tx`. Returns when either channel disconnects, flushing the
/// batch in hand.
///
/// Under an active model execution the timed receive degenerates to a
/// blocking one (the model has no deadlines), so model schedules
/// exercise the size trigger and the disconnect flush.
pub fn run_batcher<T: Coalesce>(
    rx: &Receiver<T>,
    tx: &Sender<T>,
    max_units: usize,
    deadline: Duration,
    clock: &Clock,
) {
    loop {
        let Ok(mut batch) = rx.recv() else {
            return; // senders closed, nothing pending
        };
        let cutoff = clock.now() + deadline;
        let mut open = true;
        while open && batch.units() < max_units {
            let remaining = cutoff.saturating_sub(clock.now());
            match rx.recv_timeout(remaining) {
                Ok(more) => batch.absorb(more),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => open = false,
            }
        }
        if tx.send(batch).is_err() || !open {
            return;
        }
    }
}

/// The bounded retransmit window of a remote stage link
/// ([`crate::link`]): every batch sent to a peer is registered here
/// (keyed on its dense first [`FrameId`](crate::stream::FrameId)) until
/// the peer's result acknowledges it. A reconnect replays everything
/// still pending, in id order — and because delivery happens only
/// through [`ack`](Self::ack), which removes the entry, a batch whose
/// result arrives twice (responded on the old connection *and* after a
/// replay) is delivered downstream **exactly once**: the second ack
/// finds nothing pending and is dropped as a duplicate. The window is
/// bounded so an unresponsive peer backpressures the sender instead of
/// buffering without limit.
#[derive(Debug)]
pub struct Retransmit<T> {
    window: usize,
    pending: BTreeMap<u64, (usize, T)>,
}

impl<T> Retransmit<T> {
    /// An empty window admitting at most `window` un-acked batches.
    #[must_use]
    pub fn new(window: usize) -> Self {
        Self {
            window: window.max(1),
            pending: BTreeMap::new(),
        }
    }

    /// Registers one outgoing batch (`count` frames whose dense ids
    /// begin at `first`). The item is handed back when the window is
    /// full — the sender must wait for acks before retrying — or when
    /// `first` is already pending (a duplicate send attempt).
    ///
    /// # Errors
    ///
    /// `Err(item)` on a full window or duplicate id; nothing is
    /// registered.
    pub fn offer(&mut self, first: u64, count: usize, item: T) -> Result<(), T> {
        if self.pending.len() >= self.window || self.pending.contains_key(&first) {
            return Err(item);
        }
        self.pending.insert(first, (count, item));
        Ok(())
    }

    /// Acknowledges the batch starting at `first`. `Some(item)` means
    /// this is the **first** ack — the caller owns delivery; `None`
    /// means the batch was already acked (a duplicate response after a
    /// replay race) or never registered, and must be dropped.
    pub fn ack(&mut self, first: u64) -> Option<T> {
        self.pending.remove(&first).map(|(_, item)| item)
    }

    /// Everything awaiting an ack, in ascending id order — the exact
    /// sequence a reconnect must replay.
    pub fn replay(&self) -> impl Iterator<Item = (u64, usize, &T)> {
        self.pending
            .iter()
            .map(|(&first, (count, item))| (first, *count, item))
    }

    /// Takes everything still pending, in id order — the stranded tail
    /// a failed peer leaves behind, which quiesce re-injects into the
    /// replacement stage.
    pub fn drain(&mut self) -> Vec<(u64, usize, T)> {
        let mut out = Vec::new();
        while let Some((first, (count, item))) = self.pending.pop_first() {
            out.push((first, count, item));
        }
        out
    }

    /// Batches currently awaiting an ack.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Whether every offered batch has been acked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

/// Where a remote peer stands on the connect → down → failed ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerStatus {
    /// The link is up.
    Connected,
    /// The link is down; `since` is when it was **first** lost (repeat
    /// reconnect failures do not reset the clock, so a peer that stays
    /// down walks steadily toward the deadline).
    Down {
        /// When the current outage began.
        since: Stamp,
    },
    /// The peer stayed down past the failover deadline. Terminal: the
    /// stage must be rerouted (`apply_plan`), not retried.
    Failed,
}

/// The reconnect state machine of one remote stage link: tracks the
/// peer through connect / disconnect transitions and promotes a
/// sustained outage to [`PeerStatus::Failed`] once it outlives the
/// failover deadline. Time only ever enters through [`Stamp`]s the
/// caller reads from the [`Clock`] seam, so model executions and
/// `FakeClock` tests drive it deterministically.
#[derive(Debug)]
pub struct PeerHealth {
    status: PeerStatus,
    deadline: Duration,
}

impl PeerHealth {
    /// A peer that has never connected: born `Down { since: now }`, so
    /// a server that never comes up fails over after one deadline.
    #[must_use]
    pub fn new(deadline: Duration, now: Stamp) -> Self {
        Self {
            status: PeerStatus::Down { since: now },
            deadline,
        }
    }

    /// The link came up. A `Failed` peer stays failed — the pipeline
    /// has already reassigned its segment.
    pub fn on_connected(&mut self) {
        if !matches!(self.status, PeerStatus::Failed) {
            self.status = PeerStatus::Connected;
        }
    }

    /// The link dropped. An already-down peer keeps its original
    /// outage start.
    pub fn on_disconnect(&mut self, now: Stamp) {
        if matches!(self.status, PeerStatus::Connected) {
            self.status = PeerStatus::Down { since: now };
        }
    }

    /// Re-evaluates the deadline and returns the current status: a peer
    /// down for `deadline` or longer becomes `Failed` (terminal).
    pub fn check(&mut self, now: Stamp) -> PeerStatus {
        if let PeerStatus::Down { since } = self.status {
            if now.saturating_sub(since) >= self.deadline {
                self.status = PeerStatus::Failed;
            }
        }
        self.status
    }

    /// The status as of the last transition or [`check`](Self::check).
    #[must_use]
    pub fn status(&self) -> PeerStatus {
        self.status
    }

    /// Whether the peer has been declared failed.
    #[must_use]
    pub fn is_failed(&self) -> bool {
        matches!(self.status, PeerStatus::Failed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;

    #[test]
    fn resequencer_releases_in_dense_order() {
        let mut seq = Resequencer::new(0);
        assert!(seq.push(2, 1, "c").is_empty());
        assert!(seq.push(1, 1, "b").is_empty());
        assert_eq!(seq.buffered(), 2);
        assert_eq!(seq.push(0, 1, "a"), ["a", "b", "c"]);
        assert_eq!(seq.expected(), 3);
        assert_eq!(seq.buffered(), 0);
    }

    #[test]
    fn resequencer_advances_by_unit_counts() {
        let mut seq = Resequencer::new(10);
        assert!(seq.push(12, 3, "late").is_empty());
        assert_eq!(seq.push(10, 2, "early"), ["early", "late"]);
        assert_eq!(seq.expected(), 15);
    }

    #[test]
    fn resequencer_drain_flushes_the_tail_in_order() {
        let mut seq = Resequencer::new(0);
        let _ = seq.push(3, 1, "d");
        let _ = seq.push(1, 2, "b");
        assert_eq!(seq.drain(), ["b", "d"]);
        assert_eq!(seq.buffered(), 0);
    }

    #[test]
    fn run_resequencer_reorders_and_flushes() {
        let (tx, rx) = bounded::<(u64, usize, u64)>(8);
        for unit in [(1u64, 1usize, 10u64), (0, 1, 0), (3, 1, 30)] {
            tx.send(unit).unwrap();
        }
        drop(tx);
        let mut out = Vec::new();
        run_resequencer(&rx, 0, |v| {
            out.push(v);
            true
        });
        // 0 and 1 release in order; 3 (its predecessor never arrived —
        // upstream died) flushes at disconnect.
        assert_eq!(out, [0, 10, 30]);
    }

    #[test]
    fn admission_ids_stay_dense_across_rejections() {
        let adm = Admission::new(0);
        assert_eq!(adm.admit(|_| Ok::<(), ()>(())), Ok(0));
        // A rejected send must not burn the id.
        assert_eq!(adm.admit(|_| Err::<(), &str>("full")), Err("full"));
        assert_eq!(adm.admit(|_| Ok::<(), ()>(())), Ok(1));
        assert_eq!(adm.next_id(), 2);
    }

    #[test]
    fn mailbox_supersedes_only_supersedable_items() {
        let mb = Mailbox::new();
        mb.post("stale-plan", true);
        mb.post("pool-resize", false);
        assert_eq!(mb.supersede(), 1);
        assert_eq!(mb.take(), ["pool-resize"]);
        assert!(mb.is_empty());
        assert_eq!(mb.supersede(), 0);
    }

    #[derive(Debug, PartialEq)]
    struct Units(Vec<u64>);

    impl Coalesce for Units {
        fn units(&self) -> usize {
            self.0.len()
        }
        fn absorb(&mut self, other: Self) {
            self.0.extend(other.0);
        }
    }

    #[test]
    fn batcher_closes_at_size_and_flushes_on_disconnect() {
        let (tx_in, rx_in) = bounded::<Units>(8);
        let (tx_out, rx_out) = bounded::<Units>(8);
        for id in 0..5u64 {
            tx_in.send(Units(vec![id])).unwrap();
        }
        drop(tx_in);
        run_batcher(&rx_in, &tx_out, 2, Duration::from_secs(1), &Clock::real());
        let mut batches: Vec<Units> = Vec::new();
        while let Ok(batch) = rx_out.try_recv() {
            batches.push(batch);
        }
        assert_eq!(
            batches,
            [Units(vec![0, 1]), Units(vec![2, 3]), Units(vec![4])]
        );
    }

    #[test]
    fn retransmit_acks_exactly_once_and_replays_in_order() {
        let mut retx = Retransmit::new(2);
        retx.offer(0, 2, "a").unwrap();
        retx.offer(2, 1, "b").unwrap();
        // Window full: the item comes back untouched.
        assert_eq!(retx.offer(3, 1, "c"), Err("c"));
        // Duplicate registration is rejected too.
        assert_eq!(retx.offer(0, 2, "dup"), Err("dup"));
        let replayed: Vec<_> = retx.replay().map(|(f, c, &i)| (f, c, i)).collect();
        assert_eq!(replayed, [(0, 2, "a"), (2, 1, "b")]);
        // First ack delivers; the second (a replayed response) is a
        // duplicate and must not deliver again.
        assert_eq!(retx.ack(0), Some("a"));
        assert_eq!(retx.ack(0), None);
        assert_eq!(retx.in_flight(), 1);
        // Space freed: the rejected batch now fits.
        retx.offer(3, 1, "c").unwrap();
        assert_eq!(retx.drain(), [(2, 1, "b"), (3, 1, "c")]);
        assert!(retx.is_empty());
    }

    #[test]
    fn peer_health_walks_down_to_failed_without_resetting() {
        let ms = Duration::from_millis;
        let mut health = PeerHealth::new(ms(100), ms(0));
        assert_eq!(health.status(), PeerStatus::Down { since: ms(0) });
        health.on_connected();
        assert_eq!(health.check(ms(10)), PeerStatus::Connected);
        health.on_disconnect(ms(20));
        // A repeat disconnect (failed reconnect attempt) keeps the
        // original outage start.
        health.on_disconnect(ms(90));
        assert_eq!(health.check(ms(90)), PeerStatus::Down { since: ms(20) });
        assert_eq!(health.check(ms(120)), PeerStatus::Failed);
        // Terminal: a late reconnect cannot resurrect a failed peer.
        health.on_connected();
        assert!(health.is_failed());
    }

    #[test]
    fn mux_mints_dense_global_ids_and_per_session_seqs() {
        let mux: SessionMux<&str> = SessionMux::new(8, 0);
        let a = mux.attach(1.0);
        let b = mux.attach(1.0);
        let now = Duration::ZERO;
        let ok = |_: u64, _: ()| Ok::<(), ()>(());
        let m0 = mux.admit(a, now, (), ok).unwrap();
        let m1 = mux.admit(b, now, (), ok).unwrap();
        let m2 = mux.admit(a, now, (), ok).unwrap();
        assert_eq!((m0.global, m0.seq), (0, 0));
        assert_eq!((m1.global, m1.seq), (1, 0));
        assert_eq!((m2.global, m2.seq), (2, 1));
        assert_eq!(mux.next_id(), 3);
        // A rejected send burns neither a global id nor a session seq.
        let err = mux.admit(a, now, (), |_, _| Err::<(), &str>("full"));
        assert_eq!(err, Err(MuxAdmitError::Send("full")));
        let m3 = mux.admit(b, now, (), ok).unwrap();
        assert_eq!((m3.global, m3.seq), (3, 1));
    }

    #[test]
    fn mux_enforces_weighted_quotas_with_a_floor_of_one() {
        let mux: SessionMux<u64> = SessionMux::new(4, 0);
        let heavy = mux.attach(3.0);
        let light = mux.attach(1.0);
        assert_eq!(mux.quota(heavy), Some(3));
        assert_eq!(mux.quota(light), Some(1));
        let now = Duration::ZERO;
        let ok = |_: u64, _: ()| Ok::<(), ()>(());
        for _ in 0..3 {
            mux.admit(heavy, now, (), ok).unwrap();
        }
        // Heavy is at quota: throttled, payload handed back, id intact.
        assert!(matches!(
            mux.admit(heavy, now, (), ok),
            Err(MuxAdmitError::Throttled(()))
        ));
        assert_eq!(mux.next_id(), 3);
        // The floor keeps light admissible even at a tiny share.
        let m = mux.admit(light, now, (), ok).unwrap();
        assert_eq!((m.global, m.seq), (3, 0));
        // Routing a completed heavy frame frees heavy's quota again.
        assert!(mux.route(0, 100, now));
        mux.admit(heavy, now, (), ok).unwrap();
        // Quota floor: even a 1-capacity mux admits every session once.
        let tiny: SessionMux<u64> = SessionMux::new(1, 0);
        let s1 = tiny.attach(1.0);
        let s2 = tiny.attach(1.0);
        assert_eq!(tiny.quota(s1), Some(1));
        assert_eq!(tiny.quota(s2), Some(1));
    }

    #[test]
    fn mux_routes_restore_per_session_order() {
        let mux: SessionMux<&str> = SessionMux::new(8, 0);
        let a = mux.attach(1.0);
        let b = mux.attach(1.0);
        let now = Duration::ZERO;
        let ok = |_: u64, _: ()| Ok::<(), ()>(());
        mux.admit(a, now, (), ok).unwrap(); // global 0 = a/0
        mux.admit(b, now, (), ok).unwrap(); // global 1 = b/0
        mux.admit(a, now, (), ok).unwrap(); // global 2 = a/1
                                            // Completions arrive scrambled, as racing receivers would
                                            // deliver them.
        assert!(mux.route(2, "a1", now));
        assert!(mux.route(1, "b0", now));
        // a's outbox holds seq 1 but must wait for seq 0.
        assert_eq!(mux.pop(a), None);
        assert_eq!(mux.pop(b), Some((0, "b0")));
        assert!(mux.route(0, "a0", now));
        assert_eq!(mux.pop(a), Some((0, "a0")));
        assert_eq!(mux.pop(a), Some((1, "a1")));
        assert_eq!(mux.pending(a), 0);
        assert_eq!(mux.pending(b), 0);
    }

    #[test]
    fn mux_detach_orphans_routes_and_frees_share() {
        let mux: SessionMux<u64> = SessionMux::new(4, 0);
        let a = mux.attach(1.0);
        let b = mux.attach(1.0);
        assert_eq!(mux.quota(b), Some(2));
        let now = Duration::ZERO;
        mux.admit(a, now, (), |_, _| Ok::<(), ()>(())).unwrap();
        let tally = mux.detach(a).expect("attached");
        assert_eq!(tally.submitted, 1);
        assert_eq!(tally.delivered, 0);
        // The in-pipeline frame of the detached session is dropped on
        // arrival, and b absorbs the freed share.
        assert!(!mux.route(0, 9, now));
        assert_eq!(mux.quota(b), Some(4));
        assert_eq!(mux.attached(), 1);
        assert_eq!(mux.sessions(), [b]);
        assert!(mux.detach(a).is_none());
    }

    #[test]
    fn mux_tallies_account_for_latency_and_rejections() {
        let mux: SessionMux<u64> = SessionMux::new(2, 0);
        let a = mux.attach(1.0);
        let ms = Duration::from_millis;
        let ok = |_: u64, _: ()| Ok::<(), ()>(());
        mux.admit(a, ms(0), (), ok).unwrap();
        mux.admit(a, ms(1), (), ok).unwrap();
        assert!(matches!(
            mux.admit(a, ms(2), (), ok),
            Err(MuxAdmitError::Throttled(()))
        ));
        assert!(mux.route(0, 10, ms(5)));
        assert!(mux.route(1, 11, ms(9)));
        assert_eq!(mux.pop(a), Some((0, 10)));
        let tally = mux.tally(a).expect("attached");
        assert_eq!(tally.submitted, 2);
        assert_eq!(tally.rejected, 1);
        assert_eq!(tally.delivered, 1);
        assert_eq!(tally.latency_s.len(), 2);
        assert!((tally.latency_s[0] - 0.005).abs() < 1e-9);
        assert!((tally.latency_s[1] - 0.008).abs() < 1e-9);
        assert_eq!(tally.first_submit, Some(ms(0)));
        assert_eq!(tally.last_delivery, Some(ms(9)));
        assert_eq!(mux.tallies().len(), 1);
    }

    #[test]
    fn batcher_deadline_zero_ships_what_is_queued() {
        let (tx_in, rx_in) = bounded::<Units>(8);
        let (tx_out, rx_out) = bounded::<Units>(8);
        tx_in.send(Units(vec![0])).unwrap();
        drop(tx_in);
        run_batcher(&rx_in, &tx_out, 4, Duration::ZERO, &Clock::real());
        let mut batches: Vec<Units> = Vec::new();
        while let Ok(batch) = rx_out.try_recv() {
            batches.push(batch);
        }
        assert_eq!(batches, [Units(vec![0])]);
    }
}
