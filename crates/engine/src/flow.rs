//! Interleaving-critical flow-control units, extracted into
//! model-checkable form.
//!
//! The streaming pipeline ([`crate::stream`]) and the fleet controller
//! ([`crate::fleet`]) each contain a handful of small state machines
//! whose correctness depends on how concurrent threads interleave: the
//! per-stage [`Resequencer`] that restores submission order under pooled
//! workers, the [`Admission`] lock that keeps frame ids dense, the
//! size-or-deadline [`run_batcher`] loop, and the per-tenant [`Mailbox`]
//! with plan supersession. This module isolates them from the tensor
//! machinery around them so the loomlite model checker (`cargo test
//! --features model`) can exhaustively explore their schedules with
//! real multi-thread executions — and so their unit invariants are
//! testable without spinning up a pipeline.
//!
//! Everything here synchronises through [`crate::sync`] (std types
//! normally, loomlite shims under the `model` feature) and reads time
//! only through the [`Clock`] seam, which is what makes a model
//! execution deterministic.

use crate::clock::{Clock, Stamp};
use crate::sync::{self, Mutex};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use std::collections::BTreeMap;
use std::time::Duration;

/// The reorder point of a pooled stage: workers complete units
/// (contiguous id ranges) out of order; this buffer releases them
/// strictly by ascending id. Ids must be **dense** — `expected` advances
/// by each unit's count, so a gap would stall the stage forever (which
/// is why [`Admission`] never burns an id on a rejected frame).
#[derive(Debug)]
pub struct Resequencer<T> {
    expected: u64,
    buffer: BTreeMap<u64, (usize, T)>,
}

impl<T> Resequencer<T> {
    /// An empty resequencer expecting `start` as the next first-id.
    #[must_use]
    pub fn new(start: u64) -> Self {
        Self {
            expected: start,
            buffer: BTreeMap::new(),
        }
    }

    /// Accepts one completed unit (`count` items whose ids begin at
    /// `first`) and returns every unit now releasable, in order.
    pub fn push(&mut self, first: u64, count: usize, item: T) -> Vec<T> {
        self.buffer.insert(first, (count, item));
        let mut released = Vec::new();
        while let Some((count, item)) = self.buffer.remove(&self.expected) {
            self.expected += count as u64;
            released.push(item);
        }
        released
    }

    /// Flushes whatever is still buffered, in id order. With dense ids
    /// this only holds a tail cut short upstream; releasing it in order
    /// is still the best the stage can do.
    pub fn drain(&mut self) -> Vec<T> {
        let mut released = Vec::new();
        while let Some((_, (_, item))) = self.buffer.pop_first() {
            released.push(item);
        }
        released
    }

    /// The next id the resequencer will release.
    #[must_use]
    pub fn expected(&self) -> u64 {
        self.expected
    }

    /// Units waiting for an earlier id to arrive.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }
}

/// Drives a [`Resequencer`] over a channel of completed units until the
/// senders disconnect, handing each released unit to `deliver` (which
/// returns `false` when downstream is gone and the loop should stop).
pub fn run_resequencer<T>(
    rx: &Receiver<(u64, usize, T)>,
    start: u64,
    mut deliver: impl FnMut(T) -> bool,
) {
    let mut seq = Resequencer::new(start);
    while let Ok((first, count, item)) = rx.recv() {
        for released in seq.push(first, count, item) {
            if !deliver(released) {
                return;
            }
        }
    }
    for released in seq.drain() {
        if !deliver(released) {
            return;
        }
    }
}

/// The dense-id admission lock: mints ids `start, start+1, …` such that
/// an id is consumed **only when its item actually enters the system**.
/// Density is what lets a [`Resequencer`] equate contiguous ids with
/// submission order, so a rejected admission (backpressure) must not
/// burn an id — the send attempt runs *inside* the lock, and the next id
/// only advances on success. The critical section must stay non-blocking
/// (a `try_send`, never a wait) so concurrent admitters cannot convoy.
#[derive(Debug)]
pub struct Admission {
    next: Mutex<u64>,
}

impl Admission {
    /// An admission counter starting at `start`.
    #[must_use]
    pub fn new(start: u64) -> Self {
        Self {
            next: Mutex::new(start),
        }
    }

    /// One admission attempt: calls `send` with the next id while
    /// holding the lock; the id is consumed only when `send` succeeds.
    /// `send`'s error (e.g. the payload handed back on a full queue)
    /// passes through to the caller.
    ///
    /// # Errors
    ///
    /// Whatever `send` returned.
    pub fn admit<E>(&self, send: impl FnOnce(u64) -> Result<(), E>) -> Result<u64, E> {
        let mut next = sync::lock(&self.next);
        let id = *next;
        send(id)?;
        *next += 1;
        Ok(id)
    }

    /// The id the next successful admission will receive — equivalently,
    /// how many admissions have succeeded since `start = 0`.
    #[must_use]
    pub fn next_id(&self) -> u64 {
        *sync::lock(&self.next)
    }
}

/// A per-tenant coordination mailbox: decisions made on other threads
/// queue items here until the owner drains them with [`take`]. An item
/// posted as *supersedable* is dropped by [`supersede`] — the fleet
/// controller uses this when a tenant's **own** plan change outdates an
/// eviction plan still waiting in its mailbox (applying the stale plan
/// later would revert state the decision engine has already moved past),
/// while non-supersedable items (pool resizes) always survive to `take`.
///
/// [`take`]: Mailbox::take
/// [`supersede`]: Mailbox::supersede
#[derive(Debug)]
pub struct Mailbox<T> {
    queue: Mutex<Vec<(T, bool)>>,
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Mailbox<T> {
    /// An empty mailbox.
    #[must_use]
    pub fn new() -> Self {
        Self {
            queue: Mutex::new(Vec::new()),
        }
    }

    /// Queues `item` for the owner. A `supersedable` item is dropped by
    /// the next [`supersede`](Self::supersede) instead of delivered.
    pub fn post(&self, item: T, supersedable: bool) {
        sync::lock(&self.queue).push((item, supersedable));
    }

    /// Drops every supersedable item still queued (a newer decision has
    /// outdated them) and returns how many were dropped.
    pub fn supersede(&self) -> usize {
        let mut queue = sync::lock(&self.queue);
        let before = queue.len();
        queue.retain(|(_, supersedable)| !supersedable);
        before - queue.len()
    }

    /// Takes everything queued, in posting order.
    pub fn take(&self) -> Vec<T> {
        std::mem::take(&mut *sync::lock(&self.queue))
            .into_iter()
            .map(|(item, _)| item)
            .collect()
    }

    /// Whether nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        sync::lock(&self.queue).is_empty()
    }
}

/// A unit the size-or-deadline batcher can coalesce.
pub trait Coalesce {
    /// How many atomic items this unit carries (frames in a batch).
    fn units(&self) -> usize;
    /// Folds `other` into `self`, preserving arrival order.
    fn absorb(&mut self, other: Self);
}

/// The size-or-deadline batch former: units arrive on `rx`; a batch
/// closes when it reaches `max_units` or when `deadline` elapses after
/// its first unit (the classic rule — a trickle never stalls), then
/// ships on `tx`. Returns when either channel disconnects, flushing the
/// batch in hand.
///
/// Under an active model execution the timed receive degenerates to a
/// blocking one (the model has no deadlines), so model schedules
/// exercise the size trigger and the disconnect flush.
pub fn run_batcher<T: Coalesce>(
    rx: &Receiver<T>,
    tx: &Sender<T>,
    max_units: usize,
    deadline: Duration,
    clock: &Clock,
) {
    loop {
        let Ok(mut batch) = rx.recv() else {
            return; // senders closed, nothing pending
        };
        let cutoff = clock.now() + deadline;
        let mut open = true;
        while open && batch.units() < max_units {
            let remaining = cutoff.saturating_sub(clock.now());
            match rx.recv_timeout(remaining) {
                Ok(more) => batch.absorb(more),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => open = false,
            }
        }
        if tx.send(batch).is_err() || !open {
            return;
        }
    }
}

/// The bounded retransmit window of a remote stage link
/// ([`crate::link`]): every batch sent to a peer is registered here
/// (keyed on its dense first [`FrameId`](crate::stream::FrameId)) until
/// the peer's result acknowledges it. A reconnect replays everything
/// still pending, in id order — and because delivery happens only
/// through [`ack`](Self::ack), which removes the entry, a batch whose
/// result arrives twice (responded on the old connection *and* after a
/// replay) is delivered downstream **exactly once**: the second ack
/// finds nothing pending and is dropped as a duplicate. The window is
/// bounded so an unresponsive peer backpressures the sender instead of
/// buffering without limit.
#[derive(Debug)]
pub struct Retransmit<T> {
    window: usize,
    pending: BTreeMap<u64, (usize, T)>,
}

impl<T> Retransmit<T> {
    /// An empty window admitting at most `window` un-acked batches.
    #[must_use]
    pub fn new(window: usize) -> Self {
        Self {
            window: window.max(1),
            pending: BTreeMap::new(),
        }
    }

    /// Registers one outgoing batch (`count` frames whose dense ids
    /// begin at `first`). The item is handed back when the window is
    /// full — the sender must wait for acks before retrying — or when
    /// `first` is already pending (a duplicate send attempt).
    ///
    /// # Errors
    ///
    /// `Err(item)` on a full window or duplicate id; nothing is
    /// registered.
    pub fn offer(&mut self, first: u64, count: usize, item: T) -> Result<(), T> {
        if self.pending.len() >= self.window || self.pending.contains_key(&first) {
            return Err(item);
        }
        self.pending.insert(first, (count, item));
        Ok(())
    }

    /// Acknowledges the batch starting at `first`. `Some(item)` means
    /// this is the **first** ack — the caller owns delivery; `None`
    /// means the batch was already acked (a duplicate response after a
    /// replay race) or never registered, and must be dropped.
    pub fn ack(&mut self, first: u64) -> Option<T> {
        self.pending.remove(&first).map(|(_, item)| item)
    }

    /// Everything awaiting an ack, in ascending id order — the exact
    /// sequence a reconnect must replay.
    pub fn replay(&self) -> impl Iterator<Item = (u64, usize, &T)> {
        self.pending
            .iter()
            .map(|(&first, (count, item))| (first, *count, item))
    }

    /// Takes everything still pending, in id order — the stranded tail
    /// a failed peer leaves behind, which quiesce re-injects into the
    /// replacement stage.
    pub fn drain(&mut self) -> Vec<(u64, usize, T)> {
        let mut out = Vec::new();
        while let Some((first, (count, item))) = self.pending.pop_first() {
            out.push((first, count, item));
        }
        out
    }

    /// Batches currently awaiting an ack.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Whether every offered batch has been acked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

/// Where a remote peer stands on the connect → down → failed ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerStatus {
    /// The link is up.
    Connected,
    /// The link is down; `since` is when it was **first** lost (repeat
    /// reconnect failures do not reset the clock, so a peer that stays
    /// down walks steadily toward the deadline).
    Down {
        /// When the current outage began.
        since: Stamp,
    },
    /// The peer stayed down past the failover deadline. Terminal: the
    /// stage must be rerouted (`apply_plan`), not retried.
    Failed,
}

/// The reconnect state machine of one remote stage link: tracks the
/// peer through connect / disconnect transitions and promotes a
/// sustained outage to [`PeerStatus::Failed`] once it outlives the
/// failover deadline. Time only ever enters through [`Stamp`]s the
/// caller reads from the [`Clock`] seam, so model executions and
/// `FakeClock` tests drive it deterministically.
#[derive(Debug)]
pub struct PeerHealth {
    status: PeerStatus,
    deadline: Duration,
}

impl PeerHealth {
    /// A peer that has never connected: born `Down { since: now }`, so
    /// a server that never comes up fails over after one deadline.
    #[must_use]
    pub fn new(deadline: Duration, now: Stamp) -> Self {
        Self {
            status: PeerStatus::Down { since: now },
            deadline,
        }
    }

    /// The link came up. A `Failed` peer stays failed — the pipeline
    /// has already reassigned its segment.
    pub fn on_connected(&mut self) {
        if !matches!(self.status, PeerStatus::Failed) {
            self.status = PeerStatus::Connected;
        }
    }

    /// The link dropped. An already-down peer keeps its original
    /// outage start.
    pub fn on_disconnect(&mut self, now: Stamp) {
        if matches!(self.status, PeerStatus::Connected) {
            self.status = PeerStatus::Down { since: now };
        }
    }

    /// Re-evaluates the deadline and returns the current status: a peer
    /// down for `deadline` or longer becomes `Failed` (terminal).
    pub fn check(&mut self, now: Stamp) -> PeerStatus {
        if let PeerStatus::Down { since } = self.status {
            if now.saturating_sub(since) >= self.deadline {
                self.status = PeerStatus::Failed;
            }
        }
        self.status
    }

    /// The status as of the last transition or [`check`](Self::check).
    #[must_use]
    pub fn status(&self) -> PeerStatus {
        self.status
    }

    /// Whether the peer has been declared failed.
    #[must_use]
    pub fn is_failed(&self) -> bool {
        matches!(self.status, PeerStatus::Failed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;

    #[test]
    fn resequencer_releases_in_dense_order() {
        let mut seq = Resequencer::new(0);
        assert!(seq.push(2, 1, "c").is_empty());
        assert!(seq.push(1, 1, "b").is_empty());
        assert_eq!(seq.buffered(), 2);
        assert_eq!(seq.push(0, 1, "a"), ["a", "b", "c"]);
        assert_eq!(seq.expected(), 3);
        assert_eq!(seq.buffered(), 0);
    }

    #[test]
    fn resequencer_advances_by_unit_counts() {
        let mut seq = Resequencer::new(10);
        assert!(seq.push(12, 3, "late").is_empty());
        assert_eq!(seq.push(10, 2, "early"), ["early", "late"]);
        assert_eq!(seq.expected(), 15);
    }

    #[test]
    fn resequencer_drain_flushes_the_tail_in_order() {
        let mut seq = Resequencer::new(0);
        let _ = seq.push(3, 1, "d");
        let _ = seq.push(1, 2, "b");
        assert_eq!(seq.drain(), ["b", "d"]);
        assert_eq!(seq.buffered(), 0);
    }

    #[test]
    fn run_resequencer_reorders_and_flushes() {
        let (tx, rx) = bounded::<(u64, usize, u64)>(8);
        for unit in [(1u64, 1usize, 10u64), (0, 1, 0), (3, 1, 30)] {
            tx.send(unit).unwrap();
        }
        drop(tx);
        let mut out = Vec::new();
        run_resequencer(&rx, 0, |v| {
            out.push(v);
            true
        });
        // 0 and 1 release in order; 3 (its predecessor never arrived —
        // upstream died) flushes at disconnect.
        assert_eq!(out, [0, 10, 30]);
    }

    #[test]
    fn admission_ids_stay_dense_across_rejections() {
        let adm = Admission::new(0);
        assert_eq!(adm.admit(|_| Ok::<(), ()>(())), Ok(0));
        // A rejected send must not burn the id.
        assert_eq!(adm.admit(|_| Err::<(), &str>("full")), Err("full"));
        assert_eq!(adm.admit(|_| Ok::<(), ()>(())), Ok(1));
        assert_eq!(adm.next_id(), 2);
    }

    #[test]
    fn mailbox_supersedes_only_supersedable_items() {
        let mb = Mailbox::new();
        mb.post("stale-plan", true);
        mb.post("pool-resize", false);
        assert_eq!(mb.supersede(), 1);
        assert_eq!(mb.take(), ["pool-resize"]);
        assert!(mb.is_empty());
        assert_eq!(mb.supersede(), 0);
    }

    #[derive(Debug, PartialEq)]
    struct Units(Vec<u64>);

    impl Coalesce for Units {
        fn units(&self) -> usize {
            self.0.len()
        }
        fn absorb(&mut self, other: Self) {
            self.0.extend(other.0);
        }
    }

    #[test]
    fn batcher_closes_at_size_and_flushes_on_disconnect() {
        let (tx_in, rx_in) = bounded::<Units>(8);
        let (tx_out, rx_out) = bounded::<Units>(8);
        for id in 0..5u64 {
            tx_in.send(Units(vec![id])).unwrap();
        }
        drop(tx_in);
        run_batcher(&rx_in, &tx_out, 2, Duration::from_secs(1), &Clock::real());
        let mut batches: Vec<Units> = Vec::new();
        while let Ok(batch) = rx_out.try_recv() {
            batches.push(batch);
        }
        assert_eq!(
            batches,
            [Units(vec![0, 1]), Units(vec![2, 3]), Units(vec![4])]
        );
    }

    #[test]
    fn retransmit_acks_exactly_once_and_replays_in_order() {
        let mut retx = Retransmit::new(2);
        retx.offer(0, 2, "a").unwrap();
        retx.offer(2, 1, "b").unwrap();
        // Window full: the item comes back untouched.
        assert_eq!(retx.offer(3, 1, "c"), Err("c"));
        // Duplicate registration is rejected too.
        assert_eq!(retx.offer(0, 2, "dup"), Err("dup"));
        let replayed: Vec<_> = retx.replay().map(|(f, c, &i)| (f, c, i)).collect();
        assert_eq!(replayed, [(0, 2, "a"), (2, 1, "b")]);
        // First ack delivers; the second (a replayed response) is a
        // duplicate and must not deliver again.
        assert_eq!(retx.ack(0), Some("a"));
        assert_eq!(retx.ack(0), None);
        assert_eq!(retx.in_flight(), 1);
        // Space freed: the rejected batch now fits.
        retx.offer(3, 1, "c").unwrap();
        assert_eq!(retx.drain(), [(2, 1, "b"), (3, 1, "c")]);
        assert!(retx.is_empty());
    }

    #[test]
    fn peer_health_walks_down_to_failed_without_resetting() {
        let ms = Duration::from_millis;
        let mut health = PeerHealth::new(ms(100), ms(0));
        assert_eq!(health.status(), PeerStatus::Down { since: ms(0) });
        health.on_connected();
        assert_eq!(health.check(ms(10)), PeerStatus::Connected);
        health.on_disconnect(ms(20));
        // A repeat disconnect (failed reconnect attempt) keeps the
        // original outage start.
        health.on_disconnect(ms(90));
        assert_eq!(health.check(ms(90)), PeerStatus::Down { since: ms(20) });
        assert_eq!(health.check(ms(120)), PeerStatus::Failed);
        // Terminal: a late reconnect cannot resurrect a failed peer.
        health.on_connected();
        assert!(health.is_failed());
    }

    #[test]
    fn batcher_deadline_zero_ships_what_is_queued() {
        let (tx_in, rx_in) = bounded::<Units>(8);
        let (tx_out, rx_out) = bounded::<Units>(8);
        tx_in.send(Units(vec![0])).unwrap();
        drop(tx_in);
        run_batcher(&rx_in, &tx_out, 4, Duration::ZERO, &Clock::real());
        let mut batches: Vec<Units> = Vec::new();
        while let Ok(batch) = rx_out.try_recv() {
            batches.push(batch);
        }
        assert_eq!(batches, [Units(vec![0])]);
    }
}
