//! Discrete-event simulation of the inference pipeline, and the stage
//! model it shares with real streaming execution.
//!
//! The paper's evaluation streams images at 30 FPS for 100 seconds and
//! reports per-image average end-to-end latency (§IV). This module
//! simulates that workload: stages (device/edge/cloud compute) and links
//! (inter-tier transfers) are FIFO servers; frames queue when a server is
//! busy. A single-frame run therefore reproduces the paper's Θ objective
//! exactly, while a saturated stream exposes the bottleneck stage — the
//! phenomenon motivating VSM ("the node with the most processing time
//! becomes the bottleneck", §I).
//!
//! ## One stage model, two executors
//!
//! [`StageSpec`] and [`StreamStats`] are deliberately shared between two
//! backends:
//!
//! - **Simulated** — [`simulate_stream`] runs the deterministic
//!   Lindley-recurrence queueing model over a deployment's predicted
//!   [`StageSpec`]s (this module),
//! - **Measured** — [`crate::stream::StreamPipeline`] runs the *same*
//!   three-stage shape as real worker threads over real tensors, and its
//!   closing [`crate::stream::StreamReport`] carries a [`StreamStats`]
//!   with identical field semantics and the identical interleaved
//!   `[stage, link, stage, link, stage]` utilization layout. The
//!   simulator models the pipeline's *aggregate* frame flow — when many
//!   sessions multiplex onto one pipeline ([`crate::stream`]), the
//!   simulated stream corresponds to their merged arrival process, the
//!   same traffic the shared stage servers actually serve.
//!
//! Because both sides speak the same types, predicted-vs-measured
//! comparison is a field-by-field diff: simulate the deployment's specs
//! at the observed frame rate and line the two `StreamStats` up.

/// One pipeline stage: compute plus the transfer to the next stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSpec {
    /// Label for reports (`device`, `edge`, `cloud`).
    pub name: String,
    /// Compute seconds per frame (0 for pass-through stages).
    pub service_s: f64,
    /// Transfer seconds per frame to the *next* stage (0 after the last).
    pub transfer_out_s: f64,
}

/// Statistics of a simulated stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStats {
    /// Frames completed.
    pub frames: usize,
    /// Mean end-to-end seconds per frame.
    pub mean_latency_s: f64,
    /// Maximum end-to-end seconds.
    pub max_latency_s: f64,
    /// Median end-to-end seconds.
    pub p50_latency_s: f64,
    /// 95th-percentile end-to-end seconds.
    pub p95_latency_s: f64,
    /// 99th-percentile end-to-end seconds (the perf-gate's tail metric).
    pub p99_latency_s: f64,
    /// Completed frames per second of simulated time.
    pub throughput_fps: f64,
    /// Utilization (busy fraction) per server, stage and link interleaved:
    /// `[stage0, link0, stage1, link1, …]`.
    pub utilization: Vec<f64>,
}

/// Simulates `n_frames` frames arriving at `fps` through the stages.
///
/// Every stage and every link is a FIFO server with deterministic service
/// time; the event loop is a classic time-ordered heap. Zero frames
/// yield all-zero statistics (matching a measured stream that admitted
/// nothing).
///
/// # Panics
///
/// Panics on an empty stage list or non-positive `fps`.
pub fn simulate_stream(stages: &[StageSpec], fps: f64, n_frames: usize) -> StreamStats {
    assert!(!stages.is_empty(), "no stages");
    assert!(fps > 0.0, "fps must be positive");

    // Servers: stage 0, link 0, stage 1, link 1, …, stage k-1.
    let mut service = Vec::new();
    for (i, s) in stages.iter().enumerate() {
        service.push(s.service_s.max(0.0));
        if i + 1 < stages.len() {
            service.push(s.transfer_out_s.max(0.0));
        }
    }
    let n_servers = service.len();
    if n_frames == 0 {
        return StreamStats {
            frames: 0,
            mean_latency_s: 0.0,
            max_latency_s: 0.0,
            p50_latency_s: 0.0,
            p95_latency_s: 0.0,
            p99_latency_s: 0.0,
            throughput_fps: 0.0,
            utilization: vec![0.0; n_servers],
        };
    }
    let mut free_at = vec![0.0f64; n_servers];
    let mut busy_total = vec![0.0f64; n_servers];

    // In a tandem of deterministic FIFO servers with in-order arrivals,
    // every event time is given exactly by the Lindley recurrence
    // `start = max(upstream_done, server_free)`; a per-frame forward pass
    // over the servers is therefore an exact discrete-event simulation
    // (no event can reorder), without the overhead of an event heap.
    let mut latencies = Vec::with_capacity(n_frames);
    let mut last_done = 0.0f64;
    for k in 0..n_frames {
        let arrival = k as f64 / fps;
        let mut t = arrival;
        for s in 0..n_servers {
            let start = t.max(free_at[s]);
            let done = start + service[s];
            busy_total[s] += service[s];
            free_at[s] = done;
            t = done;
        }
        latencies.push(t - arrival);
        last_done = last_done.max(t);
    }

    let mut sorted = latencies.clone();
    sorted.sort_by(f64::total_cmp);
    let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
    let horizon = last_done.max(f64::MIN_POSITIVE);
    StreamStats {
        frames: n_frames,
        mean_latency_s: mean,
        max_latency_s: sorted.last().copied().unwrap_or(0.0),
        p50_latency_s: percentile(&sorted, 0.50),
        p95_latency_s: percentile(&sorted, 0.95),
        p99_latency_s: percentile(&sorted, 0.99),
        throughput_fps: n_frames as f64 / horizon,
        utilization: busy_total.iter().map(|b| b / horizon).collect(),
    }
}

/// Nearest-rank percentile over an ascending latency vector: the
/// smallest element with at least `q·N` samples at or below it
/// (1-indexed rank `ceil(q·N)`), 0 when empty. This is the **one**
/// quantile definition in the workspace — the simulator
/// ([`simulate_stream`]), the measured [`StreamStats`] of a live
/// pipeline close, and per-session `SessionStats` all call it, so the
/// two sides report comparable quantiles and a 0- or 1-frame session
/// can never produce a NaN or an out-of-bounds rank.
#[must_use]
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Per-frame execution record: where the frame spent its time.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameTrace {
    /// Frame index.
    pub frame: usize,
    /// Arrival time (seconds).
    pub arrival_s: f64,
    /// One `(start, end)` span per server (stages and links interleaved).
    pub spans: Vec<(f64, f64)>,
}

impl FrameTrace {
    /// End-to-end latency of this frame.
    pub fn latency_s(&self) -> f64 {
        self.spans.last().map_or(0.0, |s| s.1) - self.arrival_s
    }

    /// Total time spent queueing (neither arriving nor being served).
    pub fn queueing_s(&self) -> f64 {
        let mut waited = 0.0;
        let mut ready = self.arrival_s;
        for &(start, end) in &self.spans {
            waited += (start - ready).max(0.0);
            ready = end;
        }
        waited
    }
}

/// Like [`simulate_stream`] but returns the full per-frame trace
/// (used by the Gantt renderer and by observability-minded callers).
pub fn simulate_stream_trace(stages: &[StageSpec], fps: f64, n_frames: usize) -> Vec<FrameTrace> {
    assert!(!stages.is_empty(), "no stages");
    assert!(fps > 0.0, "fps must be positive");
    let mut service = Vec::new();
    for (i, s) in stages.iter().enumerate() {
        service.push(s.service_s.max(0.0));
        if i + 1 < stages.len() {
            service.push(s.transfer_out_s.max(0.0));
        }
    }
    let mut free_at = vec![0.0f64; service.len()];
    let mut traces = Vec::with_capacity(n_frames);
    for k in 0..n_frames {
        let arrival = k as f64 / fps;
        let mut t = arrival;
        let mut spans = Vec::with_capacity(service.len());
        for (s, &dt) in service.iter().enumerate() {
            let start = t.max(free_at[s]);
            let end = start + dt;
            free_at[s] = end;
            t = end;
            spans.push((start, end));
        }
        traces.push(FrameTrace {
            frame: k,
            arrival_s: arrival,
            spans,
        });
    }
    traces
}

/// Renders an ASCII Gantt chart of the first `max_frames` frames: one row
/// per server, one column per `resolution_s` tick, frame indices mod 10 as
/// glyphs. Useful for eyeballing pipelining and bottleneck queues.
pub fn render_gantt(
    stages: &[StageSpec],
    traces: &[FrameTrace],
    max_frames: usize,
    resolution_s: f64,
) -> String {
    assert!(resolution_s > 0.0, "resolution must be positive");
    let shown = &traces[..traces.len().min(max_frames)];
    let horizon = shown
        .iter()
        .map(|t| t.spans.last().map_or(0.0, |s| s.1))
        .fold(0.0f64, f64::max);
    let cols = ((horizon / resolution_s).ceil() as usize).clamp(1, 400);
    let mut labels = Vec::new();
    for (i, s) in stages.iter().enumerate() {
        labels.push(s.name.clone());
        if i + 1 < stages.len() {
            labels.push(format!("{}→", s.name));
        }
    }
    let width = labels.iter().map(String::len).max().unwrap_or(4);
    let mut rows = vec![vec![b' '; cols]; labels.len()];
    for t in shown {
        let glyph = b'0' + (t.frame % 10) as u8;
        for (srv, &(start, end)) in t.spans.iter().enumerate() {
            if end <= start {
                continue;
            }
            let c0 = (start / resolution_s) as usize;
            let c1 = ((end / resolution_s).ceil() as usize).min(cols);
            for cell in rows[srv][c0.min(cols.saturating_sub(1))..c1].iter_mut() {
                *cell = glyph;
            }
        }
    }
    let mut out = String::new();
    for (label, row) in labels.iter().zip(rows) {
        out.push_str(&format!("{label:>width$} |"));
        out.push_str(&String::from_utf8_lossy(&row));
        out.push_str(
            "|
",
        );
    }
    out.push_str(&format!(
        "{:>width$}  ({} per column, {} frames)
",
        "",
        format_duration(resolution_s),
        shown.len()
    ));
    out
}

fn format_duration(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.1} s")
    } else {
        format!("{:.1} ms", s * 1e3)
    }
}

/// The steady-state bottleneck service time of a pipeline: the largest
/// single server time; `1/bottleneck` bounds sustainable throughput.
pub fn bottleneck_s(stages: &[StageSpec]) -> f64 {
    let mut worst = 0.0f64;
    for (i, s) in stages.iter().enumerate() {
        worst = worst.max(s.service_s);
        if i + 1 < stages.len() {
            worst = worst.max(s.transfer_out_s);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(name: &str, service: f64, xfer: f64) -> StageSpec {
        StageSpec {
            name: name.into(),
            service_s: service,
            transfer_out_s: xfer,
        }
    }

    #[test]
    fn single_frame_latency_is_total_service() {
        let stages = vec![
            stage("d", 0.01, 0.02),
            stage("e", 0.03, 0.04),
            stage("c", 0.05, 0.0),
        ];
        let stats = simulate_stream(&stages, 30.0, 1);
        assert!((stats.mean_latency_s - 0.15).abs() < 1e-12);
        assert_eq!(stats.frames, 1);
    }

    #[test]
    fn unloaded_stream_keeps_single_frame_latency() {
        // Slow arrival rate: no queueing, every frame sees the same latency.
        let stages = vec![stage("d", 0.001, 0.001), stage("c", 0.001, 0.0)];
        let stats = simulate_stream(&stages, 10.0, 100);
        assert!((stats.mean_latency_s - 0.003).abs() < 1e-9);
        assert!((stats.max_latency_s - 0.003).abs() < 1e-9);
    }

    #[test]
    fn saturated_stream_queues_at_bottleneck() {
        // Bottleneck 0.1 s/frame but frames arrive every 0.033 s: latency
        // must grow with the queue.
        let stages = vec![stage("d", 0.001, 0.0005), stage("e", 0.1, 0.0)];
        let stats = simulate_stream(&stages, 30.0, 60);
        assert!(stats.mean_latency_s > 0.5, "queueing delay expected");
        assert!(
            stats.throughput_fps < 10.5,
            "throughput capped by bottleneck"
        );
    }

    #[test]
    fn throughput_approaches_bottleneck_rate() {
        let stages = vec![stage("a", 0.02, 0.0), stage("b", 0.05, 0.0)];
        let stats = simulate_stream(&stages, 1000.0, 500);
        let cap = 1.0 / bottleneck_s(&stages);
        assert!((stats.throughput_fps - cap).abs() / cap < 0.05);
    }

    #[test]
    fn pipelining_beats_serial_throughput() {
        // Three balanced stages: pipeline throughput ~3× the serial rate.
        let stages = vec![
            stage("a", 0.03, 0.0),
            stage("b", 0.03, 0.0),
            stage("c", 0.03, 0.0),
        ];
        let stats = simulate_stream(&stages, 1000.0, 300);
        assert!(stats.throughput_fps > 30.0, "got {}", stats.throughput_fps);
    }

    #[test]
    fn utilization_is_sane() {
        let stages = vec![stage("d", 0.01, 0.0), stage("c", 0.02, 0.0)];
        let stats = simulate_stream(&stages, 25.0, 200);
        assert_eq!(stats.utilization.len(), 3); // 2 stages + 1 link
        for &u in &stats.utilization {
            assert!((0.0..=1.0 + 1e-9).contains(&u), "utilization {u}");
        }
        // The 0.02 s stage at 25 fps is 50% busy.
        assert!((stats.utilization[2] - 0.5).abs() < 0.05);
    }

    #[test]
    fn fifo_order_preserved() {
        // Max latency of a stable pipeline equals the first frame's
        // latency only if later frames never overtake.
        let stages = vec![stage("a", 0.01, 0.002), stage("b", 0.005, 0.0)];
        let stats = simulate_stream(&stages, 50.0, 50);
        assert!(stats.max_latency_s < 0.1);
    }

    #[test]
    #[should_panic(expected = "fps")]
    fn zero_fps_rejected() {
        simulate_stream(&[stage("a", 0.1, 0.0)], 0.0, 1);
    }

    #[test]
    fn percentile_empty_and_single_sample_are_finite() {
        // A 0-frame session closing early reaches percentile with an
        // empty vector; it must yield 0, never NaN or a panic.
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(percentile(&[], q), 0.0);
            assert_eq!(percentile(&[0.25], q), 0.25);
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        // Nearest-rank: rank ceil(q·N), 1-indexed. For N=2, q=0.5 the
        // rank is exactly 1 — the *lower* sample, not the upper.
        assert_eq!(percentile(&[1.0, 2.0], 0.50), 1.0);
        assert_eq!(percentile(&[1.0, 2.0], 0.51), 2.0);
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.95), 95.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        // q=0 clamps to the first sample rather than rank 0.
        assert_eq!(percentile(&v, 0.0), 1.0);
    }

    #[test]
    fn simulator_and_session_paths_share_percentile_definition() {
        // The simulator's percentiles are exactly `percentile` over its
        // sorted latency vector — pinning both sides to one definition.
        let stages = vec![stage("d", 0.01, 0.005), stage("c", 0.02, 0.0)];
        let traces = simulate_stream_trace(&stages, 30.0, 40);
        let mut lat: Vec<f64> = traces.iter().map(FrameTrace::latency_s).collect();
        lat.sort_by(f64::total_cmp);
        let stats = simulate_stream(&stages, 30.0, 40);
        assert_eq!(stats.p50_latency_s, percentile(&lat, 0.50));
        assert_eq!(stats.p95_latency_s, percentile(&lat, 0.95));
        assert_eq!(stats.p99_latency_s, percentile(&lat, 0.99));
    }

    #[test]
    fn trace_matches_stats() {
        let stages = vec![stage("d", 0.01, 0.005), stage("c", 0.02, 0.0)];
        let traces = simulate_stream_trace(&stages, 30.0, 40);
        let stats = simulate_stream(&stages, 30.0, 40);
        let mean: f64 = traces.iter().map(FrameTrace::latency_s).sum::<f64>() / traces.len() as f64;
        assert!((mean - stats.mean_latency_s).abs() < 1e-12);
    }

    #[test]
    fn unloaded_frames_never_queue() {
        let stages = vec![stage("a", 0.001, 0.001), stage("b", 0.001, 0.0)];
        for t in simulate_stream_trace(&stages, 10.0, 20) {
            assert!(t.queueing_s() < 1e-12, "frame {} queued", t.frame);
        }
    }

    #[test]
    fn saturated_frames_queue() {
        let stages = vec![stage("a", 0.1, 0.0), stage("b", 0.01, 0.0)];
        let traces = simulate_stream_trace(&stages, 30.0, 10);
        assert!(traces.last().unwrap().queueing_s() > 0.1);
    }

    #[test]
    fn gantt_renders_every_server_row() {
        let stages = vec![stage("device", 0.01, 0.005), stage("cloud", 0.02, 0.0)];
        let traces = simulate_stream_trace(&stages, 30.0, 5);
        let gantt = render_gantt(&stages, &traces, 5, 0.005);
        assert!(gantt.contains("device |"));
        assert!(gantt.contains("device→ |") || gantt.contains("device→"));
        assert!(gantt.contains("cloud |"));
        // Frame glyphs 0..4 appear.
        for g in ['0', '1', '4'] {
            assert!(gantt.contains(g), "missing glyph {g}");
        }
    }
}
