//! Deployment: from a tier assignment to a runnable pipeline.
//!
//! Converts (graph, assignment, cost model, network) into the 3-stage
//! pipeline of the online execution engine, optionally accelerating the
//! edge stage with VSM tile parallelism, and exposes the paper's
//! end-to-end metrics: single-frame latency, streamed per-image latency
//! (30 FPS × 100 s) and backbone communication per image.

use crate::pipeline::{simulate_stream, StageSpec, StreamStats};
use d3_partition::{Assignment, FixedTier, HpaOptions, PartitionError, Partitioner, Problem};
use d3_simnet::Tier;
use d3_vsm::{clamp_grid, find_tileable_runs, parallel_time, VsmPlan};

/// Vertical-separation configuration for the edge stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VsmConfig {
    /// Number of edge nodes available for tile parallelism (the paper
    /// uses four i7-8700 machines in Fig. 12).
    pub edge_nodes: usize,
    /// Tile grid (rows, cols); the paper uses 2×2.
    pub grid: (usize, usize),
    /// Minimum run length worth separating.
    pub min_run_len: usize,
}

impl Default for VsmConfig {
    fn default() -> Self {
        Self {
            edge_nodes: 4,
            grid: (2, 2),
            min_run_len: 2,
        }
    }
}

/// The partitioning strategies compared throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Everything on the device node.
    DeviceOnly,
    /// Raw input shipped to one edge node.
    EdgeOnly,
    /// Raw input shipped to the cloud.
    CloudOnly,
    /// Neurosurgeon (chain-only device/cloud split).
    Neurosurgeon,
    /// DADS (min-cut edge/cloud split).
    Dads,
    /// HPA three-way split (D3 without VSM).
    Hpa,
    /// Full D3: HPA plus VSM at the edge.
    HpaVsm,
}

impl Strategy {
    /// All strategies in the paper's presentation order.
    pub const ALL: [Strategy; 7] = [
        Strategy::DeviceOnly,
        Strategy::EdgeOnly,
        Strategy::CloudOnly,
        Strategy::Neurosurgeon,
        Strategy::Dads,
        Strategy::Hpa,
        Strategy::HpaVsm,
    ];

    /// Display label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::DeviceOnly => "Device-only",
            Strategy::EdgeOnly => "Edge-only",
            Strategy::CloudOnly => "Cloud-only",
            Strategy::Neurosurgeon => "Neurosurgeon",
            Strategy::Dads => "DADS",
            Strategy::Hpa => "HPA",
            Strategy::HpaVsm => "HPA+VSM",
        }
    }

    /// Resolves the strategy to its partition policy. Every variant
    /// routes through the [`Partitioner`] trait — [`Strategy::HpaVsm`]
    /// shares HPA's policy and adds tile parallelism at deploy time (see
    /// [`deploy_strategy`]).
    pub fn partitioner(&self) -> Box<dyn Partitioner> {
        match self {
            Strategy::DeviceOnly => Box::new(FixedTier(Tier::Device)),
            Strategy::EdgeOnly => Box::new(FixedTier(Tier::Edge)),
            Strategy::CloudOnly => Box::new(FixedTier(Tier::Cloud)),
            Strategy::Neurosurgeon => Box::new(d3_partition::Neurosurgeon),
            Strategy::Dads => Box::new(d3_partition::Dads),
            Strategy::Hpa | Strategy::HpaVsm => Box::new(d3_partition::Hpa(HpaOptions::paper())),
        }
    }
}

/// A deployed partition: pipeline stages plus accounting.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// The tier assignment deployed.
    pub assignment: Assignment,
    /// Pipeline stages (device, edge, cloud — possibly zero-service).
    pub stages: Vec<StageSpec>,
    /// Paper objective Θ: serial single-frame end-to-end latency.
    pub theta_s: f64,
    /// Pipeline single-frame latency (stage sums; equals Θ when transfer
    /// accounting matches the per-link objective).
    pub frame_latency_s: f64,
    /// Bytes crossing the LAN→cloud backbone per frame (Fig. 13 metric).
    pub backbone_bytes: u64,
    /// VSM plans applied at the edge (empty without VSM).
    pub vsm_plans: Vec<VsmPlan>,
    /// Computational redundancy of the VSM plans (1.0 without VSM).
    pub vsm_redundancy: f64,
}

impl Deployment {
    /// Partitions `problem` with `partitioner` and deploys the resulting
    /// assignment — the single deploy entry point every caller (facade,
    /// adaptation, benches, figure binaries) routes through. `vsm`
    /// enables tile parallelism for the edge segment.
    ///
    /// # Errors
    ///
    /// Propagates the policy's [`PartitionError`] when it does not apply
    /// to the problem (e.g. Neurosurgeon on a DAG topology).
    pub fn plan(
        problem: &Problem,
        partitioner: &dyn Partitioner,
        vsm: Option<VsmConfig>,
    ) -> Result<Self, PartitionError> {
        Ok(Self::new(problem, partitioner.partition(problem)?, vsm))
    }

    /// Builds a deployment for an already-computed assignment; `vsm`
    /// enables tile parallelism for the edge segment.
    pub fn new(problem: &Problem, assignment: Assignment, vsm: Option<VsmConfig>) -> Self {
        let g = problem.graph();
        // Stage compute per tier.
        let mut stage_service = [0.0f64; 3];
        for id in g.ids() {
            let t = assignment.tier(id);
            stage_service[t.rank()] += problem.vertex_time(id, t);
        }
        // VSM: replace tileable edge runs with their parallel time.
        let mut plans = Vec::new();
        let mut redundancy = 1.0;
        if let Some(cfg) = vsm {
            let edge_members = assignment.segment(Tier::Edge);
            let runs = find_tileable_runs(g, &edge_members, cfg.min_run_len);
            for run in runs {
                let Some(&last) = run.last() else {
                    continue; // degenerate empty run: nothing to tile
                };
                let full: Vec<f64> = run
                    .iter()
                    .map(|&id| problem.vertex_time(id, Tier::Edge))
                    .collect();
                let serial: f64 = full.iter().sum();
                let out_shape = g.node(last).shape;
                let (rows, cols) = clamp_grid(cfg.grid, (out_shape.h, out_shape.w));
                match VsmPlan::new(g, &run, rows, cols) {
                    Ok(plan) => {
                        let par = parallel_time(&plan, &full, cfg.edge_nodes);
                        if par < serial {
                            stage_service[Tier::Edge.rank()] += par - serial;
                            plans.push(plan);
                        }
                    }
                    Err(_) => continue, // un-plannable run: leave serial
                }
            }
            if !plans.is_empty() {
                let (tiled, whole): (f64, f64) = plans
                    .iter()
                    .fold((0.0, 0.0), |acc, p| (acc.0 + p.redundancy(), acc.1 + 1.0));
                redundancy = tiled / whole;
            }
        }
        // Transfers, deduplicated per (producer, destination tier) the way
        // a real transport would ship a tensor once per remote consumer
        // group.
        let mut hop_after = [0.0f64; 2]; // after device, after edge
        let mut backbone = 0u64;
        for node in g.nodes() {
            let from = assignment.tier(node.id);
            let mut dests: Vec<Tier> = node
                .succs
                .iter()
                .map(|s| assignment.tier(*s))
                .filter(|t| *t != from)
                .collect();
            dests.sort();
            dests.dedup();
            for dest in dests {
                let tx = problem.link_time(node.id, from, dest);
                let hop = match from {
                    Tier::Device => 0,
                    Tier::Edge => 1,
                    Tier::Cloud => continue, // monotone plans never do this
                };
                hop_after[hop] += tx;
                if dest == Tier::Cloud {
                    backbone += node.output_bytes();
                }
            }
        }
        let stages = vec![
            StageSpec {
                name: "device".into(),
                service_s: stage_service[0],
                transfer_out_s: hop_after[0],
            },
            StageSpec {
                name: "edge".into(),
                service_s: stage_service[1],
                transfer_out_s: hop_after[1],
            },
            StageSpec {
                name: "cloud".into(),
                service_s: stage_service[2],
                transfer_out_s: 0.0,
            },
        ];
        let frame_latency = stage_service.iter().sum::<f64>() + hop_after.iter().sum::<f64>();
        let theta = assignment.total_latency(problem);
        Self {
            assignment,
            stages,
            theta_s: theta,
            frame_latency_s: frame_latency,
            backbone_bytes: backbone,
            vsm_plans: plans,
            vsm_redundancy: redundancy,
        }
    }

    /// Streams frames through the pipeline (the paper: 30 FPS, 100 s →
    /// 3000 frames) and returns per-image statistics.
    pub fn stream(&self, fps: f64, n_frames: usize) -> StreamStats {
        simulate_stream(&self.stages, fps, n_frames)
    }

    /// The paper's headline metric: per-image average end-to-end latency
    /// under the standard 30 FPS / 100 s workload.
    pub fn paper_stream_latency(&self) -> f64 {
        self.stream(30.0, 3000).mean_latency_s
    }
}

/// Partitions with `strategy`'s [`Partitioner`] and deploys through
/// [`Deployment::plan`]. Returns `None` when the strategy does not apply
/// (Neurosurgeon on DAG topologies).
pub fn deploy_strategy(
    problem: &Problem,
    strategy: Strategy,
    vsm: VsmConfig,
) -> Option<Deployment> {
    if strategy == Strategy::HpaVsm {
        return Some(deploy_hpa_vsm(problem, vsm));
    }
    Deployment::plan(problem, strategy.partitioner().as_ref(), None).ok()
}

/// Joint HPA+VSM deployment.
///
/// Running HPA against the *serial* edge cost and bolting VSM on after
/// (the literal pipeline order of Fig. 2) never loads the edge when a
/// serial edge looks unattractive, so VSM would never engage. A system
/// that owns four edge nodes should partition against the *parallelized*
/// edge: this pass re-runs HPA on a problem whose tileable-layer edge
/// weights are scaled by the ideal VSM speedup (node count over typical
/// overlap redundancy), then evaluates both candidate assignments under
/// the true (plan-derived) VSM latencies and keeps the faster one.
fn deploy_hpa_vsm(problem: &Problem, vsm: VsmConfig) -> Deployment {
    let policy = Strategy::HpaVsm.partitioner();
    let base = Deployment::plan(problem, policy.as_ref(), Some(vsm))
        .expect("HPA applies to every topology");
    // Optimistic parallel factor; the real redundancy is charged by
    // Deployment::new from the actual tile plans afterwards.
    let nodes = vsm.edge_nodes.max(1) as f64;
    let factor = (nodes / 1.35).max(1.0);
    let g = problem.graph();
    let mut optimistic = problem.clone();
    for id in g.layer_ids() {
        let node = g.node(id);
        if node.kind.is_tileable() && node.preds.len() == 1 {
            let t = optimistic.vertex_time(id, Tier::Edge);
            optimistic.set_vertex_time(id, Tier::Edge, t / factor);
        }
    }
    let aware_assignment = policy
        .partition(&optimistic)
        .expect("HPA applies to every topology");
    let aware = Deployment::new(problem, aware_assignment, Some(vsm));
    if aware.frame_latency_s < base.frame_latency_s {
        aware
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_model::zoo;
    use d3_simnet::{NetworkCondition, TierProfiles};

    fn problem(g: &d3_model::DnnGraph, net: NetworkCondition) -> Problem {
        Problem::new(g, &TierProfiles::paper_testbed(), net)
    }

    #[test]
    fn single_frame_latency_matches_theta_without_shared_outputs() {
        // On chain models every output has one consumer, so the per-link Θ
        // and the deduplicated pipeline accounting agree exactly.
        for g in [zoo::alexnet(224), zoo::vgg16(224)] {
            let p = problem(&g, NetworkCondition::WiFi);
            let d = deploy_strategy(&p, Strategy::Hpa, VsmConfig::default()).unwrap();
            assert!(
                (d.frame_latency_s - d.theta_s).abs() < 1e-9,
                "{}: pipeline {} vs theta {}",
                g.name(),
                d.frame_latency_s,
                d.theta_s
            );
            let one = d.stream(30.0, 1);
            assert!((one.mean_latency_s - d.frame_latency_s).abs() < 1e-9);
        }
    }

    #[test]
    fn vsm_shrinks_edge_stage() {
        let g = zoo::vgg16(224);
        let p = problem(&g, NetworkCondition::WiFi);
        let plain = deploy_strategy(&p, Strategy::Hpa, VsmConfig::default()).unwrap();
        let tiled = deploy_strategy(&p, Strategy::HpaVsm, VsmConfig::default()).unwrap();
        let edge_plain = plain.stages[1].service_s;
        let edge_tiled = tiled.stages[1].service_s;
        if edge_plain > 0.0 {
            assert!(
                edge_tiled < edge_plain,
                "VSM should shrink the edge stage: {edge_tiled} vs {edge_plain}"
            );
            assert!(!tiled.vsm_plans.is_empty());
            assert!(tiled.vsm_redundancy > 1.0);
        }
    }

    #[test]
    fn strategies_cover_the_paper_grid() {
        let g = zoo::resnet18(224);
        let p = problem(&g, NetworkCondition::FourG);
        for s in Strategy::ALL {
            let d = deploy_strategy(&p, s, VsmConfig::default());
            match s {
                Strategy::Neurosurgeon => assert!(d.is_none(), "resnet is a DAG"),
                _ => {
                    let d = d.unwrap();
                    assert!(d.frame_latency_s > 0.0);
                }
            }
        }
    }

    #[test]
    fn backbone_bytes_match_assignment_accounting() {
        let g = zoo::darknet53(224);
        let p = problem(&g, NetworkCondition::WiFi);
        let d = deploy_strategy(&p, Strategy::Dads, VsmConfig::default()).unwrap();
        assert_eq!(d.backbone_bytes, d.assignment.backbone_bytes(&p));
    }

    #[test]
    fn hpa_stream_beats_device_only_stream() {
        let g = zoo::inception_v4(224);
        let p = problem(&g, NetworkCondition::WiFi);
        let hpa_d = deploy_strategy(&p, Strategy::Hpa, VsmConfig::default()).unwrap();
        let dev_d = deploy_strategy(&p, Strategy::DeviceOnly, VsmConfig::default()).unwrap();
        let (a, b) = (
            hpa_d.stream(30.0, 300).mean_latency_s,
            dev_d.stream(30.0, 300).mean_latency_s,
        );
        assert!(a < b, "HPA {a} vs device-only {b}");
    }

    #[test]
    fn labels_are_paper_legends() {
        assert_eq!(Strategy::HpaVsm.label(), "HPA+VSM");
        assert_eq!(Strategy::Dads.label(), "DADS");
    }

    #[test]
    fn grid_clamps_to_tiny_planes() {
        // 7×7 output planes cannot host an 8×8 grid; the deployment must
        // clamp instead of failing.
        assert_eq!(clamp_grid((8, 8), (7, 7)), (7, 7));
        assert_eq!(clamp_grid((2, 2), (1, 1)), (1, 1));
        assert_eq!(clamp_grid((2, 2), (100, 100)), (2, 2));
    }

    #[test]
    fn vsm_aware_pass_never_regresses() {
        // deploy_hpa_vsm picks the better of base and VSM-aware plans.
        for g in zoo::all_models(224) {
            for net in [NetworkCondition::WiFi, NetworkCondition::FourG] {
                let p = problem(&g, net);
                let plain = deploy_strategy(&p, Strategy::Hpa, VsmConfig::default()).unwrap();
                let joint = deploy_strategy(&p, Strategy::HpaVsm, VsmConfig::default()).unwrap();
                assert!(
                    joint.frame_latency_s <= plain.frame_latency_s + 1e-9,
                    "{} {net}: joint {} vs plain {}",
                    g.name(),
                    joint.frame_latency_s,
                    plain.frame_latency_s
                );
            }
        }
    }

    #[test]
    fn single_edge_node_disables_useful_vsm() {
        // With one edge node VSM cannot reduce the edge stage (the single
        // node pays full redundancy), so plans keep the serial time.
        let g = zoo::darknet53(224);
        let p = problem(&g, NetworkCondition::FourG);
        let one = VsmConfig {
            edge_nodes: 1,
            ..VsmConfig::default()
        };
        let four = VsmConfig::default();
        let d1 = deploy_strategy(&p, Strategy::HpaVsm, one).unwrap();
        let d4 = deploy_strategy(&p, Strategy::HpaVsm, four).unwrap();
        assert!(d4.frame_latency_s <= d1.frame_latency_s + 1e-9);
        assert!(d1.vsm_plans.is_empty(), "1-node tiling should never engage");
    }

    #[test]
    fn deployment_exposes_stage_names_in_order() {
        let g = zoo::alexnet(224);
        let p = problem(&g, NetworkCondition::WiFi);
        let d = deploy_strategy(&p, Strategy::Hpa, VsmConfig::default()).unwrap();
        let names: Vec<&str> = d.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["device", "edge", "cloud"]);
    }
}
