//! Feature engineering for the latency regression.
//!
//! The paper's regression model takes "computation resources and DNN layer
//! configurations" (layer type plus hyper-parameters such as stride and
//! input size) as input (§III-D). Resources are fixed per node, so one
//! model is trained per (node, operator family); the features capture the
//! layer configuration.

use d3_model::{DnnGraph, LayerKind, NodeId};

/// Operator families, each fitted with its own regression model — the
/// "DNN layer types" dimension of the paper's feature set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KindClass {
    /// Convolutions (with fused BN/activation).
    Conv,
    /// Fully-connected layers.
    Dense,
    /// Pooling (spatial and global).
    Pool,
    /// Everything elementwise (add, activation, softmax, concat).
    Elementwise,
}

impl KindClass {
    /// All classes.
    pub const ALL: [KindClass; 4] = [
        KindClass::Conv,
        KindClass::Dense,
        KindClass::Pool,
        KindClass::Elementwise,
    ];

    /// Classifies a layer kind. The virtual input has no class.
    pub fn of(kind: &LayerKind) -> Option<KindClass> {
        match kind {
            LayerKind::Input { .. } => None,
            LayerKind::Conv { .. } | LayerKind::DepthwiseConv { .. } => Some(KindClass::Conv),
            LayerKind::Dense { .. } => Some(KindClass::Dense),
            LayerKind::Pool { .. } | LayerKind::GlobalAvgPool => Some(KindClass::Pool),
            LayerKind::Concat
            | LayerKind::Add
            | LayerKind::Softmax
            | LayerKind::Activation { .. } => Some(KindClass::Elementwise),
        }
    }
}

/// Number of features produced by [`extract`].
pub const FEATURE_DIM: usize = 4;

/// Extracts the feature vector for a vertex:
/// `[1, GFLOPs, MB moved, sqrt(GFLOPs)]`.
///
/// The intercept absorbs dispatch overhead; the linear FLOP and byte terms
/// mirror a roofline; the square-root term lets the linear model bend with
/// hardware under-utilization on small kernels. Units are scaled to keep
/// the normal equations well conditioned.
pub fn extract(graph: &DnnGraph, id: NodeId) -> Vec<f64> {
    let node = graph.node(id);
    let flops = graph.flops(id) as f64;
    let bytes =
        (graph.input_bytes(id) + node.output_bytes() + 4 * node.kind.param_count() as u64) as f64;
    let gflops = flops / 1e9;
    vec![1.0, gflops, bytes / 1e6, gflops.sqrt()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_model::zoo;

    #[test]
    fn classifies_all_vgg_layers() {
        let g = zoo::vgg16(224);
        for id in g.layer_ids() {
            assert!(KindClass::of(&g.node(id).kind).is_some());
        }
        assert_eq!(KindClass::of(&g.node(g.input()).kind), None);
    }

    #[test]
    fn feature_dim_is_stable() {
        let g = zoo::alexnet(224);
        let id = g.layer_ids().next().unwrap();
        assert_eq!(extract(&g, id).len(), FEATURE_DIM);
    }

    #[test]
    fn bigger_layers_have_bigger_features() {
        let g = zoo::vgg16(224);
        let conv2 = g.nodes().iter().find(|n| n.name == "conv2").unwrap().id;
        let conv1 = g.nodes().iter().find(|n| n.name == "conv1").unwrap().id;
        let (f1, f2) = (extract(&g, conv1), extract(&g, conv2));
        assert!(f2[1] > f1[1], "conv2 has more FLOPs than conv1");
        assert_eq!(f1[0], 1.0, "intercept feature");
    }

    #[test]
    fn class_partition_is_total_on_all_models() {
        for g in zoo::all_models(96) {
            for id in g.layer_ids() {
                assert!(
                    KindClass::of(&g.node(id).kind).is_some(),
                    "{}: unclassified layer {}",
                    g.name(),
                    g.node(id).name
                );
            }
        }
    }
}
