//! The profiler: collects (noisy) per-layer latency measurements.
//!
//! The paper's profiler "collects the operating conditions of computation
//! nodes ... as well as the network status" (§III-B). On-the-spot
//! execution of every layer on every node is dismissed as impractical
//! (§III-D), which is why the regression model exists. This module
//! simulates the measurement process: ground truth comes from the
//! analytical [`NodeProfile`] cost model, perturbed by multiplicative
//! log-normal-ish noise representing run-to-run variance.

use d3_model::{DnnGraph, NodeId};
use d3_simnet::NodeProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One latency measurement of a layer on a node.
#[derive(Debug, Clone)]
pub struct Sample {
    /// The vertex measured (so downstream consumers — e.g. the engine's
    /// telemetry API — can address the observation back to the graph).
    pub vertex: NodeId,
    /// Feature vector (see [`crate::features::extract`]).
    pub features: Vec<f64>,
    /// Operator family.
    pub class: crate::features::KindClass,
    /// Measured latency in seconds (noisy).
    pub latency_s: f64,
    /// Noise-free ground truth, kept for evaluation.
    pub truth_s: f64,
}

/// Simulated measurement campaign against one hardware node.
#[derive(Debug, Clone)]
pub struct Profiler {
    node: NodeProfile,
    /// Relative standard deviation of measurement noise (e.g. `0.05`).
    noise_sigma: f64,
    rng: StdRng,
}

impl Profiler {
    /// Creates a profiler for `node` with multiplicative noise of relative
    /// standard deviation `noise_sigma`, deterministic in `seed`.
    pub fn new(node: NodeProfile, noise_sigma: f64, seed: u64) -> Self {
        Self {
            node,
            noise_sigma,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The node being profiled.
    pub fn node(&self) -> &NodeProfile {
        &self.node
    }

    /// Standard normal variate via Box–Muller (rand's `Normal` lives in
    /// the separate `rand_distr` crate, which we avoid adding).
    fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.random::<f64>().max(1e-12);
        let u2: f64 = self.rng.random();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Measures one layer once.
    pub fn measure(&mut self, graph: &DnnGraph, id: NodeId) -> Sample {
        let truth = self.node.layer_latency(graph, id);
        let noise = (1.0 + self.noise_sigma * self.standard_normal()).max(0.2);
        Sample {
            vertex: id,
            features: crate::features::extract(graph, id),
            class: crate::features::KindClass::of(&graph.node(id).kind)
                .expect("measure called on the virtual input"),
            latency_s: truth * noise,
            truth_s: truth,
        }
    }

    /// Measures every real layer of a graph `repeats` times.
    pub fn measure_graph(&mut self, graph: &DnnGraph, repeats: usize) -> Vec<Sample> {
        let mut out = Vec::new();
        for _ in 0..repeats {
            for id in graph.layer_ids() {
                out.push(self.measure(graph, id));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_model::zoo;

    #[test]
    fn noiseless_profiler_matches_ground_truth() {
        let g = zoo::alexnet(224);
        let mut p = Profiler::new(NodeProfile::edge_i7_8700(), 0.0, 1);
        for id in g.layer_ids() {
            let s = p.measure(&g, id);
            assert!((s.latency_s - s.truth_s).abs() < 1e-15);
        }
    }

    #[test]
    fn noise_is_bounded_and_centered() {
        let g = zoo::alexnet(224);
        let mut p = Profiler::new(NodeProfile::raspberry_pi4(), 0.05, 7);
        let samples = p.measure_graph(&g, 50);
        let ratios: Vec<f64> = samples.iter().map(|s| s.latency_s / s.truth_s).collect();
        let mean: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!((mean - 1.0).abs() < 0.01, "noise mean {mean}");
        assert!(ratios.iter().all(|&r| r > 0.2 && r < 2.0));
    }

    #[test]
    fn measurement_is_seeded() {
        let g = zoo::alexnet(224);
        let id = g.layer_ids().next().unwrap();
        let a = Profiler::new(NodeProfile::jetson_nano(), 0.1, 3).measure(&g, id);
        let b = Profiler::new(NodeProfile::jetson_nano(), 0.1, 3).measure(&g, id);
        assert_eq!(a.latency_s, b.latency_s);
    }

    #[test]
    fn measure_graph_covers_all_layers() {
        let g = zoo::resnet18(224);
        let mut p = Profiler::new(NodeProfile::edge_i7_8700(), 0.05, 9);
        let samples = p.measure_graph(&g, 2);
        assert_eq!(samples.len(), 2 * (g.len() - 1));
    }
}
