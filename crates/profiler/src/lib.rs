//! # d3-profiler
//!
//! The profiler and regression latency estimator of the D3 reproduction
//! (§III-B "Profiler" and §III-D "Latency Estimation" of the paper):
//!
//! - [`profile::Profiler`] simulates noisy per-layer latency measurements
//!   against a hardware cost model,
//! - [`ols`] fits ordinary-least-squares models over engineered layer
//!   features ([`features`]),
//! - [`estimator::RegressionEstimator`] predicts the per-tier vertex
//!   weights `T_vi = {t_d, t_e, t_c}` consumed by the partition
//!   algorithms, reproducing Fig. 4's predicted-vs-actual comparison.
//!
//! ## Example
//!
//! ```
//! use d3_profiler::{LatencyProvider, RegressionEstimator};
//! use d3_simnet::{Tier, TierProfiles};
//! use d3_model::zoo;
//!
//! let profiles = TierProfiles::paper_testbed();
//! let train = zoo::resnet18(224);
//! let est = RegressionEstimator::train(&profiles, &[&train], 0.05, 2, 7);
//! let alexnet = zoo::alexnet(224);
//! let id = alexnet.layer_ids().next().unwrap();
//! assert!(est.latency(&alexnet, id, Tier::Device) >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod estimator;
pub mod features;
pub mod ols;
pub mod profile;

pub use estimator::{Accuracy, LatencyProvider, RegressionEstimator};
pub use features::KindClass;
pub use ols::{FitError, LinearModel};
pub use profile::{Profiler, Sample};
