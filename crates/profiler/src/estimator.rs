//! The regression latency estimator (Fig. 4).
//!
//! One [`LinearModel`] is fitted per (tier, operator family) from noisy
//! profiler samples. The estimator then predicts the vertex weight
//! `T_vi = {t_d, t_e, t_c}` of any layer of any network without executing
//! it on the target node — the paper's replacement for impractical
//! on-the-spot measurement (§III-D).

use crate::features::{extract, KindClass};
use crate::ols::{self, LinearModel};
use crate::profile::Profiler;
use d3_model::{DnnGraph, NodeId};
use d3_simnet::{Tier, TierProfiles};
use std::collections::HashMap;

/// A source of per-layer, per-tier latencies — the interface consumed by
/// the partition algorithms. Implemented by the ground-truth hardware
/// model (oracle) and by the trained regression estimator.
pub trait LatencyProvider {
    /// Processing time (seconds) of vertex `id` of `graph` at `tier`
    /// (`t^l_i` in the paper). Zero for the virtual input.
    fn latency(&self, graph: &DnnGraph, id: NodeId, tier: Tier) -> f64;
}

/// The ground-truth oracle: reads the analytical cost model directly.
impl LatencyProvider for TierProfiles {
    fn latency(&self, graph: &DnnGraph, id: NodeId, tier: Tier) -> f64 {
        self.layer_latency(graph, id, tier)
    }
}

/// Per-(tier, family) fitted regression models.
#[derive(Debug, Clone)]
pub struct RegressionEstimator {
    models: HashMap<(Tier, KindClass), LinearModel>,
    /// Fallback per tier for families unseen during training.
    fallback: HashMap<Tier, LinearModel>,
}

/// Accuracy of an estimator on one graph/tier (used by the Fig. 4
/// reproduction).
#[derive(Debug, Clone, Copy)]
pub struct Accuracy {
    /// Mean absolute percentage error.
    pub mape: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
}

impl RegressionEstimator {
    /// Trains from noisy measurements of `training` graphs on each tier of
    /// `profiles`.
    ///
    /// `noise_sigma` is the relative measurement noise, `repeats` the
    /// number of measurement passes per graph. Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics when a tier ends up with no trainable samples at all
    /// (empty `training` set).
    pub fn train(
        profiles: &TierProfiles,
        training: &[&DnnGraph],
        noise_sigma: f64,
        repeats: usize,
        seed: u64,
    ) -> Self {
        assert!(!training.is_empty(), "no training graphs");
        let mut models = HashMap::new();
        let mut fallback = HashMap::new();
        for (t_idx, tier) in Tier::ALL.iter().enumerate() {
            let node = profiles.node(*tier).clone();
            let mut profiler = Profiler::new(node, noise_sigma, seed ^ (t_idx as u64) << 32);
            let mut by_class: HashMap<KindClass, (Vec<Vec<f64>>, Vec<f64>)> = HashMap::new();
            let mut all: (Vec<Vec<f64>>, Vec<f64>) = (Vec::new(), Vec::new());
            for g in training {
                for s in profiler.measure_graph(g, repeats) {
                    let entry = by_class.entry(s.class).or_default();
                    entry.0.push(s.features.clone());
                    entry.1.push(s.latency_s);
                    all.0.push(s.features);
                    all.1.push(s.latency_s);
                }
            }
            for (class, (xs, ys)) in by_class {
                if let Ok(m) = ols::fit(&xs, &ys) {
                    models.insert((*tier, class), m);
                }
            }
            let m = ols::fit(&all.0, &all.1).expect("tier-level fit");
            fallback.insert(*tier, m);
        }
        Self { models, fallback }
    }

    /// Predicted latency, clamped to be non-negative.
    pub fn estimate(&self, graph: &DnnGraph, id: NodeId, tier: Tier) -> f64 {
        let Some(class) = KindClass::of(&graph.node(id).kind) else {
            return 0.0; // virtual input
        };
        let x = extract(graph, id);
        let model = self
            .models
            .get(&(tier, class))
            .or_else(|| self.fallback.get(&tier))
            .expect("estimator has a fallback per tier");
        model.predict(&x).max(0.0)
    }

    /// Compares predictions against the noise-free ground truth of
    /// `profiles` for every layer of `graph` at `tier`.
    pub fn evaluate(&self, profiles: &TierProfiles, graph: &DnnGraph, tier: Tier) -> Accuracy {
        let mut pred = Vec::new();
        let mut truth = Vec::new();
        for id in graph.layer_ids() {
            pred.push(self.estimate(graph, id, tier));
            truth.push(profiles.layer_latency(graph, id, tier));
        }
        Accuracy {
            mape: ols::mape(&pred, &truth),
            r_squared: ols::r_squared(&pred, &truth),
        }
    }
}

impl LatencyProvider for RegressionEstimator {
    fn latency(&self, graph: &DnnGraph, id: NodeId, tier: Tier) -> f64 {
        self.estimate(graph, id, tier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_model::zoo;

    fn trained() -> (TierProfiles, RegressionEstimator, Vec<DnnGraph>) {
        let profiles = TierProfiles::paper_testbed();
        // Train on three networks at two scales; hold AlexNet out.
        let train_graphs = vec![
            zoo::vgg16(224),
            zoo::resnet18(224),
            zoo::darknet53(224),
            zoo::vgg16(160),
            zoo::resnet18(160),
        ];
        let refs: Vec<&DnnGraph> = train_graphs.iter().collect();
        let est = RegressionEstimator::train(&profiles, &refs, 0.05, 3, 42);
        (profiles, est, train_graphs)
    }

    #[test]
    fn fig4_alexnet_predictions_track_actuals() {
        // Fig. 4: predicted vs actual per-layer latency on a held-out
        // network (AlexNet) for CPU (edge) and GPU (cloud) nodes.
        let (profiles, est, _) = trained();
        let alexnet = zoo::alexnet(224);
        for tier in [Tier::Edge, Tier::Cloud] {
            let acc = est.evaluate(&profiles, &alexnet, tier);
            assert!(
                acc.r_squared > 0.9,
                "{tier}: R² = {:.3} too low",
                acc.r_squared
            );
        }
    }

    #[test]
    fn estimates_are_nonnegative_and_ordered_for_heavy_layers() {
        let (_, est, graphs) = trained();
        let g = &graphs[0]; // vgg16@224
        let conv2 = g.nodes().iter().find(|n| n.name == "conv2").unwrap().id;
        let d = est.estimate(g, conv2, Tier::Device);
        let e = est.estimate(g, conv2, Tier::Edge);
        let c = est.estimate(g, conv2, Tier::Cloud);
        assert!(d > e && e > c, "d={d} e={e} c={c}");
        for id in g.layer_ids() {
            for t in Tier::ALL {
                assert!(est.estimate(g, id, t) >= 0.0);
            }
        }
    }

    #[test]
    fn virtual_input_estimates_zero() {
        let (_, est, graphs) = trained();
        let g = &graphs[0];
        assert_eq!(est.estimate(g, g.input(), Tier::Device), 0.0);
    }

    #[test]
    fn oracle_provider_matches_cost_model() {
        let profiles = TierProfiles::paper_testbed();
        let g = zoo::alexnet(224);
        let id = g.layer_ids().next().unwrap();
        let via_trait = LatencyProvider::latency(&profiles, &g, id, Tier::Edge);
        assert_eq!(via_trait, profiles.layer_latency(&g, id, Tier::Edge));
    }

    #[test]
    fn training_is_deterministic() {
        let profiles = TierProfiles::paper_testbed();
        let g224 = zoo::resnet18(224);
        let refs = vec![&g224];
        let a = RegressionEstimator::train(&profiles, &refs, 0.05, 2, 1);
        let b = RegressionEstimator::train(&profiles, &refs, 0.05, 2, 1);
        let id = g224.layer_ids().nth(3).unwrap();
        assert_eq!(
            a.estimate(&g224, id, Tier::Edge),
            b.estimate(&g224, id, Tier::Edge)
        );
    }
}
