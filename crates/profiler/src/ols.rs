//! Ordinary least squares by normal equations.
//!
//! The regression model of §III-D maps (computation resources, DNN layer
//! configuration) to per-layer latency. Per node and per operator family
//! the mapping is close to linear in FLOPs and bytes moved, so an OLS fit
//! over engineered features suffices (the paper likewise reports
//! near-perfect predictions in Fig. 4).
//!
//! The solver forms `XᵀX β = Xᵀy` and solves by Gaussian elimination with
//! partial pivoting, adding a tiny ridge term for numerical safety on
//! nearly-collinear features.

/// A fitted linear model `y ≈ β · x`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    /// Coefficients, one per feature.
    pub coefs: Vec<f64>,
}

/// Errors from [`fit`].
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// No training rows were supplied.
    Empty,
    /// Rows have inconsistent feature counts.
    RaggedRows,
    /// The normal equations are singular even with ridge regularization.
    Singular,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::Empty => write!(f, "no training samples"),
            FitError::RaggedRows => write!(f, "inconsistent feature dimensions"),
            FitError::Singular => write!(f, "singular normal equations"),
        }
    }
}

impl std::error::Error for FitError {}

impl LinearModel {
    /// Predicted value for a feature vector.
    ///
    /// # Panics
    ///
    /// Panics when the dimension differs from the fit.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.coefs.len(), "feature dimension mismatch");
        self.coefs.iter().zip(x).map(|(c, v)| c * v).sum()
    }
}

/// Fits `y ≈ β·x` by least squares.
///
/// # Errors
///
/// See [`FitError`].
pub fn fit(xs: &[Vec<f64>], ys: &[f64]) -> Result<LinearModel, FitError> {
    if xs.is_empty() || xs.len() != ys.len() {
        return Err(FitError::Empty);
    }
    let k = xs[0].len();
    if k == 0 || xs.iter().any(|r| r.len() != k) {
        return Err(FitError::RaggedRows);
    }
    // Normal equations A = XᵀX, b = Xᵀy.
    let mut a = vec![vec![0.0f64; k]; k];
    let mut b = vec![0.0f64; k];
    for (row, &y) in xs.iter().zip(ys) {
        for i in 0..k {
            b[i] += row[i] * y;
            for j in 0..k {
                a[i][j] += row[i] * row[j];
            }
        }
    }
    // Tiny ridge relative to the diagonal scale for conditioning.
    let scale = (0..k).map(|i| a[i][i]).fold(0.0f64, f64::max).max(1e-30);
    for (i, row) in a.iter_mut().enumerate() {
        row[i] += scale * 1e-12;
    }
    solve(a, b).map(|coefs| LinearModel { coefs })
}

/// Gaussian elimination with partial pivoting.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>, FitError> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())
            .unwrap();
        if a[pivot][col].abs() < 1e-300 {
            return Err(FitError::Singular);
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            let (upper, lower) = a.split_at_mut(row);
            let pivot_row = &upper[col];
            for (x, &p) in lower[0][col..n].iter_mut().zip(&pivot_row[col..n]) {
                *x -= f * p;
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for j in row + 1..n {
            acc -= a[row][j] * x[j];
        }
        x[row] = acc / a[row][row];
    }
    Ok(x)
}

/// Mean absolute percentage error of predictions against ground truth,
/// skipping zero-valued truths.
pub fn mape(pred: &[f64], truth: &[f64]) -> f64 {
    let mut total = 0.0;
    let mut n = 0;
    for (&p, &t) in pred.iter().zip(truth) {
        if t.abs() > 0.0 {
            total += ((p - t) / t).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// Coefficient of determination R².
pub fn r_squared(pred: &[f64], truth: &[f64]) -> f64 {
    let n = truth.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let mean: f64 = truth.iter().sum::<f64>() / n;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean).powi(2)).sum();
    let ss_res: f64 = pred.iter().zip(truth).map(|(p, t)| (t - p).powi(2)).sum();
    if ss_tot == 0.0 {
        return if ss_res == 0.0 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relation() {
        // y = 2 + 3a - b
        let xs: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![1.0, i as f64, (i * i % 7) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|r| 2.0 + 3.0 * r[1] - r[2]).collect();
        let m = fit(&xs, &ys).unwrap();
        assert!((m.coefs[0] - 2.0).abs() < 1e-8);
        assert!((m.coefs[1] - 3.0).abs() < 1e-8);
        assert!((m.coefs[2] + 1.0).abs() < 1e-8);
    }

    #[test]
    fn predict_applies_coefficients() {
        let m = LinearModel {
            coefs: vec![1.0, 0.5],
        };
        assert_eq!(m.predict(&[2.0, 4.0]), 4.0);
    }

    #[test]
    fn rejects_empty_and_ragged() {
        assert_eq!(fit(&[], &[]), Err(FitError::Empty));
        let xs = vec![vec![1.0, 2.0], vec![1.0]];
        assert_eq!(fit(&xs, &[1.0, 2.0]), Err(FitError::RaggedRows));
    }

    #[test]
    fn handles_noisy_fit() {
        // y = 5x with deterministic "noise"; slope should be close to 5.
        let xs: Vec<Vec<f64>> = (1..100).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (1..100)
            .map(|i| 5.0 * i as f64 + if i % 2 == 0 { 0.3 } else { -0.3 })
            .collect();
        let m = fit(&xs, &ys).unwrap();
        assert!((m.coefs[0] - 5.0).abs() < 0.05);
    }

    #[test]
    fn collinear_features_survive_via_ridge() {
        // Second feature is an exact copy of the first.
        let xs: Vec<Vec<f64>> = (1..30).map(|i| vec![i as f64, i as f64]).collect();
        let ys: Vec<f64> = (1..30).map(|i| 2.0 * i as f64).collect();
        let m = fit(&xs, &ys).unwrap();
        // Combined effect must be 2 even if the split is arbitrary.
        assert!((m.coefs[0] + m.coefs[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn metrics_behave() {
        let truth = vec![1.0, 2.0, 4.0];
        let perfect = truth.clone();
        assert_eq!(mape(&perfect, &truth), 0.0);
        assert_eq!(r_squared(&perfect, &truth), 1.0);
        let off = vec![1.1, 2.2, 4.4];
        assert!((mape(&off, &truth) - 0.1).abs() < 1e-9);
        assert!(r_squared(&off, &truth) < 1.0);
    }
}
