//! Multi-model serving: one process, many deployed DNNs, concurrent
//! requests.
//!
//! [`D3Runtime`] is the "write the plan once, execute it millions of
//! times" half of the facade: each registered model is profiled,
//! partitioned and deployed **once** at registration, then
//! [`serve`](D3Runtime::serve) executes requests against the frozen plan
//! from any number of threads (`D3Runtime` is `Send + Sync`; serving
//! needs only `&self`). Per-model request counters and latency
//! accumulators come for free, so an operator can watch traffic shift
//! between tenants.
//!
//! ```
//! use d3_core::{D3Runtime, ModelOptions};
//! use d3_model::zoo;
//! use d3_tensor::Tensor;
//!
//! let mut rt = D3Runtime::new();
//! rt.register("tiny", zoo::tiny_cnn(16), ModelOptions::new().seed(7))
//!     .unwrap();
//! let out = rt.serve("tiny", &Tensor::random(3, 16, 16, 1)).unwrap();
//! assert!(out.data().iter().all(|v| v.is_finite()));
//! assert_eq!(rt.stats("tiny").unwrap().requests, 1);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

use d3_engine::{AdaptivePolicy, Clock, FleetController, FleetOptions};
use d3_model::DnnGraph;
use d3_partition::{Hpa, HpaOptions, PartitionError, Partitioner};
use d3_simnet::{NetworkCondition, TierProfiles};
use d3_tensor::Tensor;

use crate::{D3System, RegressionConfig, VsmConfig};

/// Per-model configuration for [`D3Runtime::register`] — the same knobs
/// as [`D3Builder`](crate::D3Builder), minus the graph.
pub struct ModelOptions {
    profiles: TierProfiles,
    net: NetworkCondition,
    partitioner: Box<dyn Partitioner>,
    hpa: HpaOptions,
    vsm: Option<VsmConfig>,
    regression: Option<RegressionConfig>,
    seed: u64,
}

impl Default for ModelOptions {
    fn default() -> Self {
        Self {
            profiles: TierProfiles::paper_testbed(),
            net: NetworkCondition::WiFi,
            partitioner: Box::new(Hpa(HpaOptions::paper())),
            hpa: HpaOptions::paper(),
            vsm: Some(VsmConfig::default()),
            regression: None,
            seed: 0xD3,
        }
    }
}

impl std::fmt::Debug for ModelOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelOptions")
            .field("net", &self.net)
            .field("partitioner", &self.partitioner.name())
            .field("vsm", &self.vsm)
            .field("regression", &self.regression)
            .field("seed", &self.seed)
            .finish()
    }
}

impl ModelOptions {
    /// The paper-default configuration (HPA + VSM over Wi-Fi).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Hardware profiles per tier (default: the paper's §IV testbed).
    #[must_use]
    pub fn profiles(mut self, profiles: TierProfiles) -> Self {
        self.profiles = profiles;
        self
    }

    /// Network condition (default: Wi-Fi, Table III).
    #[must_use]
    pub fn network(mut self, net: NetworkCondition) -> Self {
        self.net = net;
        self
    }

    /// HPA options; also restores HPA as the partition policy.
    #[must_use]
    pub fn hpa_options(mut self, opts: HpaOptions) -> Self {
        self.partitioner = Box::new(Hpa(opts.clone()));
        self.hpa = opts;
        self
    }

    /// Replaces the partition policy (default: HPA, paper config).
    #[must_use]
    pub fn partitioner(mut self, partitioner: impl Partitioner + 'static) -> Self {
        self.partitioner = Box::new(partitioner);
        self
    }

    /// Enables VSM with the given config (default: 4 edge nodes, 2×2).
    #[must_use]
    pub fn vsm(mut self, cfg: VsmConfig) -> Self {
        self.vsm = Some(cfg);
        self
    }

    /// Disables VSM (partition-only deployment).
    #[must_use]
    pub fn without_vsm(mut self) -> Self {
        self.vsm = None;
        self
    }

    /// Trains and uses the regression latency estimator.
    #[must_use]
    pub fn with_regression(mut self, cfg: RegressionConfig) -> Self {
        self.regression = Some(cfg);
        self
    }

    /// Seed for weights and profiling noise.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn into_builder(self, graph: impl Into<Arc<DnnGraph>>) -> crate::D3Builder {
        let mut builder = D3System::builder(graph)
            .profiles(self.profiles)
            .network(self.net)
            .hpa_options(self.hpa)
            .with_regression_opt(self.regression)
            .seed(self.seed);
        builder = match self.vsm {
            Some(cfg) => builder.vsm(cfg),
            None => builder.without_vsm(),
        };
        builder.boxed_partitioner(self.partitioner)
    }
}

/// Why a serve call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No model registered under the requested name.
    UnknownModel(String),
    /// The input tensor does not match the model's input shape.
    ShapeMismatch {
        /// The model served.
        model: String,
        /// Expected `(c, h, w)`.
        expected: (usize, usize, usize),
        /// Received `(c, h, w)`.
        got: (usize, usize, usize),
    },
    /// The model's deployed plan cannot run as a streaming pipeline
    /// (e.g. a non-monotone assignment or a multi-output graph).
    Unstreamable {
        /// The model whose plan was rejected.
        model: String,
        /// Human-readable cause from the pipeline builder.
        reason: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownModel(name) => write!(f, "no model registered as {name:?}"),
            ServeError::ShapeMismatch {
                model,
                expected,
                got,
            } => write!(
                f,
                "input shape {got:?} does not match {model:?} (expects {expected:?})"
            ),
            ServeError::Unstreamable { model, reason } => {
                write!(f, "{model:?} cannot stream: {reason}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// A snapshot of one model's serving statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelStats {
    /// Requests served since registration.
    pub requests: u64,
    /// Wall-clock seconds spent inside [`D3Runtime::serve`], summed.
    pub total_latency_s: f64,
    /// `total_latency_s / requests` (zero before the first request).
    pub mean_latency_s: f64,
}

struct ModelEntry {
    system: D3System,
    requests: AtomicU64,
    latency_ns: AtomicU64,
    /// Adaptation-policy prototype; forked into a private controller for
    /// every stream session opened on this model.
    controller: Option<Box<dyn AdaptivePolicy>>,
    /// The model's live shared stream, when sessions are open on it:
    /// `open_stream` upgrades this to attach new sessions to the one
    /// resident stage-pool set (thread count stays O(pool), not
    /// O(sessions)). Weak, so the *sessions* own the pipeline — the
    /// last one to close (or drop) joins the stage workers, and the
    /// next open founds a fresh pipeline.
    stream: Mutex<Weak<crate::session::SharedStream>>,
}

/// A multi-tenant serving runtime: named models, each pre-partitioned
/// and deployed, served concurrently from any number of threads.
///
/// Registration (`&mut self`) is the only mutating operation; serving
/// takes `&self` and only touches atomic counters, so a `D3Runtime`
/// behind an `Arc` (or a scoped-thread borrow) is safe to hammer from a
/// thread pool.
#[derive(Default)]
pub struct D3Runtime {
    models: HashMap<String, ModelEntry>,
    /// The shared multi-tenant arbiter, when one is attached. Sessions
    /// opened on its tenants route their adaptation through it.
    fleet: Option<Arc<Mutex<FleetController>>>,
    /// Timestamp source for serve-latency accounting — the engine-wide
    /// clock seam rather than a raw `Instant::now()`.
    clock: Clock,
}

impl std::fmt::Debug for D3Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("D3Runtime")
            .field("models", &self.models())
            .field("total_requests", &self.total_requests())
            .finish()
    }
}

impl D3Runtime {
    /// An empty runtime.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Profiles, partitions and deploys `graph`, then registers the
    /// resulting system under `name`. Re-registering a name replaces the
    /// previous model (and resets its counters).
    ///
    /// # Errors
    ///
    /// Propagates the policy's [`PartitionError`] when it does not apply
    /// to the model; the runtime is left unchanged.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        graph: impl Into<Arc<DnnGraph>>,
        options: ModelOptions,
    ) -> Result<&mut Self, PartitionError> {
        let system = options.into_builder(graph).try_build()?;
        self.register_system(name, system);
        Ok(self)
    }

    /// Registers an already-built [`D3System`] under `name`.
    pub fn register_system(&mut self, name: impl Into<String>, system: D3System) -> &mut Self {
        self.models.insert(
            name.into(),
            ModelEntry {
                system,
                requests: AtomicU64::new(0),
                latency_ns: AtomicU64::new(0),
                controller: None,
                stream: Mutex::new(Weak::new()),
            },
        );
        self
    }

    /// Attaches an adaptation-policy prototype to the named model:
    /// every stream session subsequently opened on it gets its own
    /// controller (a [`fork`](AdaptivePolicy::fork) of `policy` driving
    /// an [`AdaptiveEngine`](crate::AdaptiveEngine) seeded with the
    /// deployed plan), so the session **self-adapts** — its measured
    /// telemetry and injected observations drive live plan swaps. See
    /// `StreamSession::adapt`.
    ///
    /// Replaces any previously attached policy; already-open sessions
    /// keep the controller they were born with.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] when `name` is not registered.
    pub fn attach_controller(
        &mut self,
        name: &str,
        policy: Box<dyn AdaptivePolicy>,
    ) -> Result<&mut Self, ServeError> {
        let entry = self
            .models
            .get_mut(name)
            .ok_or_else(|| ServeError::UnknownModel(name.to_string()))?;
        entry.controller = Some(policy);
        Ok(self)
    }

    /// Removes the named model's attached adaptation policy (new
    /// sessions open without a controller). No-op when none is attached.
    pub fn detach_controller(&mut self, name: &str) -> Option<Box<dyn AdaptivePolicy>> {
        self.models
            .get_mut(name)
            .and_then(|entry| entry.controller.take())
    }

    /// Attaches a **fleet controller** arbitrating the named models as
    /// co-resident tenants — the multi-tenant generalization of
    /// [`attach_controller`](Self::attach_controller). Each `(model,
    /// weight)` pair registers one tenant: a fork of `policy` drives an
    /// engine seeded with that model's deployed plan, and the weight is
    /// its priority (higher wins contention; lower gets evicted first).
    ///
    /// Streams subsequently opened on a tenant model route their
    /// `observe`/`adapt` calls through the shared
    /// [`FleetController`]: re-partitions solve against *residual*
    /// capacity (total minus the other tenants' committed load), one
    /// decision may emit coordinated updates for several tenants
    /// (delivered to the other sessions through per-tenant mailboxes),
    /// and a global budget plus per-tenant cooldown keep the fleet from
    /// thrashing. Intended for **one live session per tenant**.
    ///
    /// Uses [`FleetOptions::default`]; see
    /// [`attach_fleet_controller_with`](Self::attach_fleet_controller_with)
    /// to tune arbitration. Replaces any previously attached fleet.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] when any named model is not
    /// registered; the runtime is left unchanged.
    pub fn attach_fleet_controller(
        &mut self,
        policy: Box<dyn AdaptivePolicy>,
        weights: &[(&str, f64)],
    ) -> Result<&mut Self, ServeError> {
        self.attach_fleet_controller_with(policy, weights, FleetOptions::default())
    }

    /// [`attach_fleet_controller`](Self::attach_fleet_controller) with
    /// explicit arbitration options.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] when any named model is not
    /// registered; the runtime is left unchanged.
    pub fn attach_fleet_controller_with(
        &mut self,
        policy: Box<dyn AdaptivePolicy>,
        weights: &[(&str, f64)],
        options: FleetOptions,
    ) -> Result<&mut Self, ServeError> {
        let mut fleet = FleetController::new(options);
        for (name, weight) in weights {
            let entry = self
                .models
                .get(*name)
                .ok_or_else(|| ServeError::UnknownModel((*name).to_string()))?;
            fleet.register(
                *name,
                *weight,
                entry.system.controller_for_session(policy.fork()),
            );
        }
        self.fleet = Some(Arc::new(Mutex::new(fleet)));
        Ok(self)
    }

    /// Removes the attached fleet controller, returning its shared
    /// handle (already-open sessions keep theirs and continue to
    /// arbitrate through it).
    pub fn detach_fleet_controller(&mut self) -> Option<Arc<Mutex<FleetController>>> {
        self.fleet.take()
    }

    /// The attached fleet controller's shared handle, when present
    /// (lock it to inspect the [`ResourceLedger`](d3_engine::ResourceLedger)
    /// or arbitration counters).
    #[must_use]
    pub fn fleet_controller(&self) -> Option<&Arc<Mutex<FleetController>>> {
        self.fleet.as_ref()
    }

    /// Removes the model registered under `name`, returning its system —
    /// the rotation half of multi-tenant operation (register the new
    /// version, unregister the old). Live [`StreamSession`]s opened on
    /// the model keep serving: they captured the deployed plan.
    ///
    /// [`StreamSession`]: crate::StreamSession
    pub fn unregister(&mut self, name: &str) -> Option<D3System> {
        self.models.remove(name).map(|entry| entry.system)
    }

    /// Opens a pipelined streaming session on the named model.
    ///
    /// The **first** open founds the model's resident pipeline: the
    /// deployed plan's tier segments become worker threads connected by
    /// bounded queues, configured by `options`, overlapping consecutive
    /// frames for bottleneck-bound (rather than sum-bound) throughput.
    /// While that pipeline is live, **subsequent opens of the same model
    /// multiplex onto it** — no new threads; only
    /// [`options.weight`](crate::StreamOptions::weight) applies, setting
    /// the new session's fair share at the shared admission gate. Every
    /// session sees exactly its own frames, in its own submission order.
    /// When an adaptation policy is [attached](Self::attach_controller),
    /// each session carries its own controller and self-adapts the
    /// shared pipeline. See [`StreamSession`](crate::StreamSession) for
    /// the session lifecycle.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] when `name` is not registered, or
    /// [`ServeError::Unstreamable`] when the deployed plan cannot run as
    /// a forward pipeline (or `options.weight` is not a positive, finite
    /// share).
    pub fn open_stream(
        &self,
        name: &str,
        options: crate::StreamOptions,
    ) -> Result<crate::StreamSession, ServeError> {
        let entry = self
            .models
            .get(name)
            .ok_or_else(|| ServeError::UnknownModel(name.to_string()))?;
        // A fleet tenancy outranks a per-model controller: the session
        // arbitrates through the shared FleetController (which owns the
        // tenant's engine) instead of carrying a private one.
        let fleet = self.fleet.as_ref().and_then(|fleet| {
            let is_tenant = fleet
                .lock()
                .expect("fleet controller lock poisoned")
                .tenant_names()
                .contains(&name);
            is_tenant.then(|| crate::session::FleetHandle {
                tenant: name.to_string(),
                fleet: Arc::clone(fleet),
            })
        });
        let controller = if fleet.is_some() {
            None
        } else {
            entry
                .controller
                .as_ref()
                .map(|proto| entry.system.controller_for_session(proto.fork()))
        };
        crate::StreamSession::open(
            name,
            &entry.system,
            &entry.stream,
            options,
            controller,
            fleet,
        )
    }

    /// Runs one inference on the named model across its deployed tiers.
    /// The output is bit-identical to single-node inference (the paper's
    /// lossless guarantee). Callable concurrently from many threads.
    ///
    /// # Errors
    ///
    /// Fails when `name` is not registered or the input shape mismatches
    /// the model.
    pub fn serve(&self, name: &str, input: &Tensor) -> Result<Tensor, ServeError> {
        let entry = self
            .models
            .get(name)
            .ok_or_else(|| ServeError::UnknownModel(name.to_string()))?;
        let expected = entry.system.graph().input_shape();
        let expected = (expected.c, expected.h, expected.w);
        let got = input.shape3();
        let got = (got.c, got.h, got.w);
        if expected != got {
            return Err(ServeError::ShapeMismatch {
                model: name.to_string(),
                expected,
                got,
            });
        }
        let start = self.clock.now();
        let output = entry.system.run(input);
        // Latency before count, and stats() reads count before latency:
        // a concurrent reader can only over-estimate the mean, never see
        // a counted request with missing latency (spurious zero mean).
        let elapsed = self.clock.now().saturating_sub(start);
        entry
            .latency_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        entry.requests.fetch_add(1, Ordering::Relaxed);
        Ok(output)
    }

    /// The deployed system behind `name`, when registered.
    #[must_use]
    pub fn system(&self, name: &str) -> Option<&D3System> {
        self.models.get(name).map(|entry| &entry.system)
    }

    /// Serving statistics for `name`, when registered.
    #[must_use]
    pub fn stats(&self, name: &str) -> Option<ModelStats> {
        self.models.get(name).map(|entry| {
            // Count before latency (serve() writes in the opposite
            // order), so a torn snapshot under concurrent traffic can
            // only over-estimate the mean.
            let requests = entry.requests.load(Ordering::Relaxed);
            let total_latency_s = entry.latency_ns.load(Ordering::Relaxed) as f64 * 1e-9;
            ModelStats {
                requests,
                total_latency_s,
                mean_latency_s: if requests == 0 {
                    0.0
                } else {
                    total_latency_s / requests as f64
                },
            }
        })
    }

    /// Registered model names, sorted.
    #[must_use]
    pub fn models(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.models.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Number of registered models.
    #[must_use]
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether no models are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Requests served across all models.
    #[must_use]
    pub fn total_requests(&self) -> u64 {
        self.models
            .values()
            .map(|entry| entry.requests.load(Ordering::Relaxed))
            .sum()
    }

    /// One line per model: name, partition summary, request count.
    #[must_use]
    pub fn describe(&self) -> String {
        let mut lines: Vec<String> = self
            .models
            .iter()
            .map(|(name, entry)| {
                format!(
                    "{name}: [{}] {} | requests: {}",
                    entry.system.partitioner_name(),
                    entry.system.describe_partition(),
                    entry.requests.load(Ordering::Relaxed),
                )
            })
            .collect();
        lines.sort_unstable();
        lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_model::zoo;
    use d3_tensor::max_abs_diff;

    #[test]
    fn runtime_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<D3Runtime>();
        assert_send_sync::<D3System>();
    }

    #[test]
    fn register_serve_and_count() {
        let mut rt = D3Runtime::new();
        rt.register("tiny", zoo::tiny_cnn(16), ModelOptions::new().seed(3))
            .unwrap();
        assert_eq!(rt.models(), vec!["tiny"]);
        let input = Tensor::random(3, 16, 16, 9);
        let out = rt.serve("tiny", &input).unwrap();
        let expect = d3_model::Executor::new(rt.system("tiny").unwrap().graph(), 3).run(&input);
        assert_eq!(max_abs_diff(&out, &expect), Some(0.0));
        let stats = rt.stats("tiny").unwrap();
        assert_eq!(stats.requests, 1);
        assert!(stats.total_latency_s > 0.0);
        assert!(stats.mean_latency_s > 0.0);
    }

    #[test]
    fn unknown_model_and_bad_shapes_are_typed_errors() {
        let mut rt = D3Runtime::new();
        rt.register("tiny", zoo::tiny_cnn(16), ModelOptions::new())
            .unwrap();
        let input = Tensor::random(3, 16, 16, 1);
        assert_eq!(
            rt.serve("missing", &input),
            Err(ServeError::UnknownModel("missing".into()))
        );
        let wrong = Tensor::random(3, 8, 8, 1);
        assert!(matches!(
            rt.serve("tiny", &wrong),
            Err(ServeError::ShapeMismatch { .. })
        ));
        assert_eq!(rt.stats("tiny").unwrap().requests, 0);
    }

    #[test]
    fn failed_registration_leaves_runtime_unchanged() {
        let mut rt = D3Runtime::new();
        let err = rt
            .register(
                "res",
                zoo::resnet18(224),
                ModelOptions::new().partitioner(d3_partition::Neurosurgeon),
            )
            .unwrap_err();
        assert!(matches!(err, PartitionError::NotAChain { .. }));
        assert!(rt.is_empty());
    }

    #[test]
    fn unregister_returns_the_system() {
        let mut rt = D3Runtime::new();
        rt.register("tiny", zoo::tiny_cnn(16), ModelOptions::new())
            .unwrap();
        let system = rt.unregister("tiny").unwrap();
        assert_eq!(system.graph().name(), "tiny_cnn");
        assert!(rt.is_empty());
        assert!(rt.unregister("tiny").is_none());
    }

    #[test]
    fn models_lists_names_sorted_for_rotation() {
        let mut rt = D3Runtime::new();
        rt.register("b", zoo::tiny_cnn(16), ModelOptions::new())
            .unwrap()
            .register("a", zoo::chain_cnn(4, 8, 16), ModelOptions::new())
            .unwrap();
        assert_eq!(rt.models(), vec!["a", "b"]);
        rt.unregister("a");
        assert_eq!(rt.models(), vec!["b"]);
    }

    #[test]
    fn describe_covers_all_models() {
        let mut rt = D3Runtime::new();
        rt.register("a", zoo::tiny_cnn(16), ModelOptions::new())
            .unwrap()
            .register("b", zoo::chain_cnn(4, 8, 16), ModelOptions::new())
            .unwrap();
        let text = rt.describe();
        assert!(text.contains("a: [hpa]"));
        assert!(text.contains("b: [hpa]"));
        assert_eq!(rt.len(), 2);
        assert_eq!(rt.total_requests(), 0);
    }
}
