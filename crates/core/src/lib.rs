//! # d3-core
//!
//! The top-level facade of the D3 reproduction — *Dynamic DNN
//! Decomposition for Lossless Synergistic Inference* (ICDCS 2021).
//!
//! [`D3System`] wires the full paper pipeline together:
//!
//! 1. **Profile** — simulate noisy per-layer measurements on each tier's
//!    hardware ([`d3_profiler::Profiler`]),
//! 2. **Estimate** — fit the regression latency model
//!    ([`d3_profiler::RegressionEstimator`], Fig. 4),
//! 3. **Partition** — run any [`Partitioner`] over the weighted DAG
//!    (default: [`Hpa`](d3_partition::Hpa), Algorithm 1),
//! 4. **Separate** — vertically split edge conv stacks into fused tiles
//!    ([`d3_vsm::VsmPlan`], Algorithm 2),
//! 5. **Deploy & run** — stream frames through the discrete-event
//!    pipeline and/or execute real tensors across threads
//!    ([`d3_engine`]).
//!
//! Systems **own** their graph (shared through an [`Arc`]), so they can
//! outlive the stack frame that built them and move across threads. For
//! serving several models concurrently from one process, see
//! [`D3Runtime`]; for sustained frame streams, open a pipelined
//! [`StreamSession`] via [`D3Runtime::open_stream`] — sessions of the
//! same model multiplex onto one shared resident pipeline. The layer
//! map and invariant index live in `ARCHITECTURE.md` at the workspace
//! root.
//!
//! ## Quickstart
//!
//! ```
//! use d3_core::D3System;
//! use d3_model::zoo;
//! use d3_simnet::NetworkCondition;
//!
//! let d3 = D3System::builder(zoo::alexnet(224))
//!     .network(NetworkCondition::WiFi)
//!     .build();
//! println!("plan: {}", d3.describe_partition());
//! let stats = d3.stream(30.0, 300);
//! assert!(stats.mean_latency_s > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod runtime;
mod session;

pub use d3_engine::{
    AdaptiveEngine, AdaptivePolicy, AutoscalePolicy, BatchOptions, Codec, CodecSwitcher,
    CodecUpdate, ControlUpdate, Decision, Deployment, Encoded, FleetController, FleetOptions,
    FleetUpdate, FrameId, FullResolve, HysteresisLocal, InjectedDelay, LinkShaping, LinkTraffic,
    NoAdapt, Observation, PlanSwap, PlanUpdate, PoolOptions, PoolResize, PoolSize, PoolUpdate,
    ProbeOptions, ResourceLedger, SessionId, SessionStats, StagePoolStats, Strategy,
    StreamBuildError, StreamOptions, StreamRecvError, StreamReport, SubmitError, TelemetrySnapshot,
    TelemetryTap, TenantCommit, TierContention, UpdateScope, VsmConfig, WireCodec,
};
pub use d3_model::{DnnGraph, NodeId};
pub use d3_partition::{
    Assignment, CodecProfile, DriftMonitor, HpaOptions, PartitionError, Partitioner, Problem,
};
pub use d3_profiler::RegressionEstimator;
pub use d3_simnet::{NetworkCondition, Tier, TierProfiles};
pub use runtime::{D3Runtime, ModelOptions, ModelStats, ServeError};
pub use session::{AdaptEvent, StreamSession};

use std::sync::Arc;

use d3_engine::{pipeline::StreamStats, run_distributed};
use d3_partition::Hpa;
use d3_profiler::LatencyProvider;
use d3_tensor::Tensor;

/// Builder for a [`D3System`].
pub struct D3Builder {
    graph: Arc<DnnGraph>,
    profiles: TierProfiles,
    net: NetworkCondition,
    partitioner: Box<dyn Partitioner>,
    hpa: HpaOptions,
    vsm: Option<VsmConfig>,
    regression: Option<RegressionConfig>,
    seed: u64,
}

impl std::fmt::Debug for D3Builder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("D3Builder")
            .field("graph", &self.graph.name())
            .field("net", &self.net)
            .field("partitioner", &self.partitioner.name())
            .field("vsm", &self.vsm)
            .field("regression", &self.regression)
            .field("seed", &self.seed)
            .finish()
    }
}

/// Configuration of the regression latency estimator; when absent the
/// system reads the hardware cost model directly (oracle weights).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegressionConfig {
    /// Relative measurement noise (e.g. `0.05`).
    pub noise_sigma: f64,
    /// Measurement passes per training graph.
    pub repeats: usize,
}

impl D3Builder {
    /// Hardware profiles per tier (default: the paper's §IV testbed).
    pub fn profiles(mut self, profiles: TierProfiles) -> Self {
        self.profiles = profiles;
        self
    }

    /// Network condition (default: Wi-Fi, Table III).
    pub fn network(mut self, net: NetworkCondition) -> Self {
        self.net = net;
        self
    }

    /// HPA options (default: the paper's configuration). Also restores
    /// HPA as the partition policy if [`partitioner`](Self::partitioner)
    /// had replaced it.
    pub fn hpa_options(mut self, opts: HpaOptions) -> Self {
        self.partitioner = Box::new(Hpa(opts.clone()));
        self.hpa = opts;
        self
    }

    /// Replaces the partition policy (default: HPA with the paper's
    /// configuration). Any [`Partitioner`] works — the paper baselines
    /// from [`d3_partition`] or a third-party implementation.
    pub fn partitioner(self, partitioner: impl Partitioner + 'static) -> Self {
        self.boxed_partitioner(Box::new(partitioner))
    }

    /// Replaces the partition policy with an already-boxed [`Partitioner`].
    pub fn boxed_partitioner(mut self, partitioner: Box<dyn Partitioner>) -> Self {
        self.partitioner = partitioner;
        self
    }

    /// Enables VSM with the given config (default: 4 edge nodes, 2×2).
    pub fn vsm(mut self, cfg: VsmConfig) -> Self {
        self.vsm = Some(cfg);
        self
    }

    /// Disables VSM (partition-only deployment).
    pub fn without_vsm(mut self) -> Self {
        self.vsm = None;
        self
    }

    /// Uses the trained regression estimator for vertex weights instead
    /// of the ground-truth cost model (the paper's actual data path:
    /// profile → regress → partition).
    pub fn with_regression(mut self, cfg: RegressionConfig) -> Self {
        self.regression = Some(cfg);
        self
    }

    /// Enables or disables the regression estimator from an option.
    pub fn with_regression_opt(mut self, cfg: Option<RegressionConfig>) -> Self {
        self.regression = cfg;
        self
    }

    /// Seed for weights and profiling noise.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Profiles, estimates, partitions, separates and deploys.
    ///
    /// # Errors
    ///
    /// Propagates the policy's [`PartitionError`] when it does not apply
    /// to the model (e.g. Neurosurgeon on a DAG topology).
    pub fn try_build(self) -> Result<D3System, PartitionError> {
        let estimator = self.regression.map(|cfg| {
            RegressionEstimator::train(
                &self.profiles,
                &[self.graph.as_ref()],
                cfg.noise_sigma,
                cfg.repeats,
                self.seed,
            )
        });
        let provider: &dyn LatencyProvider = match &estimator {
            Some(e) => e,
            None => &self.profiles,
        };
        let problem = Problem::new(self.graph.clone(), provider, self.net);
        let deployment = Deployment::plan(&problem, self.partitioner.as_ref(), self.vsm)?;
        Ok(D3System {
            graph: self.graph,
            problem,
            estimator,
            deployment,
            partitioner_name: self.partitioner.name().to_string(),
            hpa: self.hpa,
            vsm: self.vsm,
            seed: self.seed,
        })
    }

    /// Profiles, estimates, partitions, separates and deploys.
    ///
    /// # Panics
    ///
    /// Panics when the configured partition policy does not apply to the
    /// model; use [`try_build`](Self::try_build) to handle that case.
    pub fn build(self) -> D3System {
        self.try_build()
            .unwrap_or_else(|e| panic!("cannot deploy: {e}"))
    }
}

/// A fully deployed D3 system for one DNN.
///
/// Owns its graph (via [`Arc`]), so it is `Send + Sync + 'static`: build
/// once, then move it across threads or share it behind a reference and
/// call [`run`](Self::run) concurrently.
pub struct D3System {
    graph: Arc<DnnGraph>,
    problem: Problem,
    estimator: Option<RegressionEstimator>,
    deployment: Deployment,
    partitioner_name: String,
    hpa: HpaOptions,
    vsm: Option<VsmConfig>,
    seed: u64,
}

impl std::fmt::Debug for D3System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("D3System")
            .field("graph", &self.graph.name())
            .field("partitioner", &self.partitioner_name)
            .field("theta_s", &self.deployment.theta_s)
            .field("vsm", &self.vsm)
            .field("seed", &self.seed)
            .finish()
    }
}

impl D3System {
    /// Starts building a system for `graph` — an owned [`DnnGraph`], an
    /// `Arc<DnnGraph>`, or `&DnnGraph` (cloned into a fresh `Arc`).
    pub fn builder(graph: impl Into<Arc<DnnGraph>>) -> D3Builder {
        D3Builder {
            graph: graph.into(),
            profiles: TierProfiles::paper_testbed(),
            net: NetworkCondition::WiFi,
            partitioner: Box::new(Hpa(HpaOptions::paper())),
            hpa: HpaOptions::paper(),
            vsm: Some(VsmConfig::default()),
            regression: None,
            seed: 0xD3,
        }
    }

    /// The model being served.
    pub fn graph(&self) -> &DnnGraph {
        &self.graph
    }

    /// The shared handle to the model (cheap to clone).
    pub fn graph_arc(&self) -> &Arc<DnnGraph> {
        &self.graph
    }

    /// The weighted partition problem instance.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// The tier assignment produced by the configured partitioner.
    pub fn partition(&self) -> &Assignment {
        &self.deployment.assignment
    }

    /// Name of the partition policy that produced the deployment.
    pub fn partitioner_name(&self) -> &str {
        &self.partitioner_name
    }

    /// The deployed pipeline (stages, Θ, backbone bytes, VSM plans).
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// The trained regression estimator, when enabled.
    pub fn estimator(&self) -> Option<&RegressionEstimator> {
        self.estimator.as_ref()
    }

    /// The VSM configuration the system deploys with (None when VSM is
    /// disabled).
    pub fn vsm_config(&self) -> Option<VsmConfig> {
        self.vsm
    }

    /// Single-frame end-to-end latency (the paper's Θ objective).
    pub fn theta_s(&self) -> f64 {
        self.deployment.theta_s
    }

    /// Streams `n_frames` at `fps` through the pipeline simulator.
    pub fn stream(&self, fps: f64, n_frames: usize) -> StreamStats {
        self.deployment.stream(fps, n_frames)
    }

    /// Executes one real input across device/edge/cloud worker threads,
    /// with VSM tile parallelism at the edge when enabled. The output is
    /// bit-identical to single-node inference — the paper's lossless
    /// guarantee. Takes `&self`, so callers may serve concurrently from
    /// many threads.
    pub fn run(&self, input: &Tensor) -> Tensor {
        run_distributed(
            &self.graph,
            self.seed,
            &self.deployment.assignment,
            self.vsm,
            input,
        )
        .expect("in-process distributed run cannot lose workers")
    }

    /// The seed deriving this system's synthetic weights (single-node
    /// executors must match it to reproduce outputs bit-exactly).
    pub fn weight_seed(&self) -> u64 {
        self.seed
    }

    /// Converts into the runtime-adaptive controller under the paper's
    /// default policy (hysteresis-gated local re-partitioning,
    /// [`HysteresisLocal`]). Shorthand for
    /// [`into_controller`](Self::into_controller).
    pub fn into_adaptive(self, monitor: DriftMonitor) -> AdaptiveEngine {
        self.into_controller(Box::new(HysteresisLocal(monitor)))
    }

    /// Converts into a runtime-adaptive controller driven by `policy`.
    /// The controller adopts this system's deployed assignment as its
    /// starting plan — whichever partitioner produced it — while
    /// drift-triggered *re*-partitions use HPA with the builder's HPA
    /// options (the paper's adaptation mechanism is HPA-specific), and
    /// emitted [`PlanUpdate`]s deploy with this system's VSM
    /// configuration.
    pub fn into_controller(self, policy: Box<dyn AdaptivePolicy>) -> AdaptiveEngine {
        AdaptiveEngine::with_assignment(self.problem, self.deployment.assignment, self.hpa, policy)
            .with_vsm(self.vsm)
    }

    /// Builds a per-session controller from an attached policy prototype
    /// (the system keeps serving; the controller gets its own live copy
    /// of the problem).
    pub(crate) fn controller_for_session(&self, policy: Box<dyn AdaptivePolicy>) -> AdaptiveEngine {
        AdaptiveEngine::with_assignment(
            self.problem.clone(),
            self.deployment.assignment.clone(),
            self.hpa.clone(),
            policy,
        )
        .with_vsm(self.vsm)
    }

    /// A human-readable summary of the partition, e.g.
    /// `device: 3 layers | edge: 10 layers | cloud: 9 layers`.
    pub fn describe_partition(&self) -> String {
        let a = &self.deployment.assignment;
        let seg = |t: Tier| {
            a.segment(t)
                .iter()
                .filter(|id| **id != self.graph.input())
                .count()
        };
        format!(
            "device: {} layers | edge: {} layers | cloud: {} layers | theta: {:.2} ms",
            seg(Tier::Device),
            seg(Tier::Edge),
            seg(Tier::Cloud),
            self.theta_s() * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_model::zoo;
    use d3_tensor::max_abs_diff;

    #[test]
    fn builder_defaults_deploy() {
        let g = zoo::alexnet(224);
        let d3 = D3System::builder(&g).build();
        assert!(d3.theta_s() > 0.0);
        assert!(d3.partition().is_monotone(d3.problem()));
        assert_eq!(d3.partitioner_name(), "hpa");
        let desc = d3.describe_partition();
        assert!(desc.contains("device") && desc.contains("cloud"));
    }

    #[test]
    fn builder_accepts_owned_and_shared_graphs() {
        let owned = D3System::builder(zoo::alexnet(224)).build();
        let shared_graph = Arc::new(zoo::alexnet(224));
        let shared = D3System::builder(shared_graph.clone()).build();
        assert_eq!(owned.theta_s(), shared.theta_s());
        // The Arc is shared, not recloned.
        assert!(Arc::ptr_eq(shared.graph_arc(), &shared_graph));
    }

    #[test]
    fn system_outlives_its_building_scope_and_crosses_threads() {
        let d3 = {
            let g = zoo::tiny_cnn(16);
            D3System::builder(g).seed(7).build()
        };
        let handle = std::thread::spawn(move || d3.theta_s());
        assert!(handle.join().unwrap() > 0.0);
    }

    #[test]
    fn custom_partitioner_routes_through_trait() {
        let g = zoo::alexnet(224);
        let d3 = D3System::builder(&g)
            .partitioner(d3_partition::Neurosurgeon)
            .without_vsm()
            .build();
        assert_eq!(d3.partitioner_name(), "neurosurgeon");
        for id in g.layer_ids() {
            assert_ne!(d3.partition().tier(id), Tier::Edge);
        }
    }

    #[test]
    fn inapplicable_partitioner_is_a_typed_error() {
        let err = D3System::builder(zoo::resnet18(224))
            .partitioner(d3_partition::Neurosurgeon)
            .try_build()
            .unwrap_err();
        assert_eq!(
            err,
            PartitionError::NotAChain {
                algorithm: "Neurosurgeon"
            }
        );
    }

    #[test]
    fn regression_path_produces_valid_plans() {
        let g = zoo::resnet18(224);
        let d3 = D3System::builder(&g)
            .with_regression(RegressionConfig {
                noise_sigma: 0.05,
                repeats: 3,
            })
            .build();
        assert!(d3.estimator().is_some());
        assert!(d3.partition().is_monotone(d3.problem()));
    }

    #[test]
    fn end_to_end_lossless_run() {
        let g = zoo::tiny_cnn(16);
        let d3 = D3System::builder(&g).seed(7).build();
        let input = Tensor::random(3, 16, 16, 21);
        let out = d3.run(&input);
        let expect = d3_model::Executor::new(&g, 7).run(&input);
        assert_eq!(max_abs_diff(&out, &expect), Some(0.0));
    }

    #[test]
    fn adaptive_conversion_preserves_plan_quality() {
        let g = zoo::vgg16(224);
        let d3 = D3System::builder(&g).build();
        let theta = d3.theta_s();
        let adaptive = d3.into_adaptive(DriftMonitor::default());
        assert!((adaptive.current_theta() - theta).abs() < 1e-9);
    }

    #[test]
    fn adaptive_conversion_adopts_non_hpa_plans() {
        // A custom policy's deployed plan must survive the conversion
        // verbatim instead of being silently re-partitioned with HPA.
        let g = zoo::alexnet(224);
        let d3 = D3System::builder(&g)
            .partitioner(d3_partition::Dads)
            .without_vsm()
            .build();
        let plan = d3.partition().clone();
        let theta = d3.theta_s();
        let adaptive = d3.into_adaptive(DriftMonitor::default());
        assert_eq!(adaptive.assignment().tiers(), plan.tiers());
        assert!((adaptive.current_theta() - theta).abs() < 1e-9);
    }

    #[test]
    fn stream_latency_at_least_single_frame() {
        let g = zoo::darknet53(224);
        let d3 = D3System::builder(&g).build();
        let stats = d3.stream(30.0, 200);
        assert!(stats.mean_latency_s >= d3.deployment().frame_latency_s - 1e-9);
    }

    #[test]
    fn builder_accepts_custom_profiles_and_tiers() {
        let g = zoo::resnet18(224);
        let d3 = D3System::builder(&g)
            .profiles(TierProfiles::rpi_testbed())
            .network(NetworkCondition::FourG)
            .hpa_options(HpaOptions::paper().with_tiers(&[Tier::Edge, Tier::Cloud]))
            .without_vsm()
            .build();
        for id in g.layer_ids() {
            assert_ne!(d3.partition().tier(id), Tier::Device);
        }
        assert!(d3.deployment().vsm_plans.is_empty());
    }

    #[test]
    fn vsm_config_is_respected() {
        let g = zoo::darknet53(224);
        let d3 = D3System::builder(&g)
            .network(NetworkCondition::FourG)
            .vsm(VsmConfig {
                edge_nodes: 9,
                grid: (3, 3),
                min_run_len: 2,
            })
            .build();
        for plan in &d3.deployment().vsm_plans {
            assert_eq!(plan.grid, (3, 3));
        }
    }

    #[test]
    fn estimator_and_oracle_agree_on_plan_quality() {
        // Plans from estimated weights should be near the oracle plan's
        // quality when evaluated under ground truth.
        let g = zoo::darknet53(224);
        let oracle = D3System::builder(&g).build();
        let est = D3System::builder(&g)
            .with_regression(RegressionConfig {
                noise_sigma: 0.05,
                repeats: 3,
            })
            .build();
        // Evaluate both assignments under the ground-truth problem.
        let truth = oracle.problem();
        let oracle_theta = oracle.partition().total_latency(truth);
        let est_theta = est.partition().total_latency(truth);
        assert!(
            est_theta <= oracle_theta * 1.35,
            "estimated plan {est_theta} vs oracle plan {oracle_theta}"
        );
    }
}
