//! # d3-core
//!
//! The top-level facade of the D3 reproduction — *Dynamic DNN
//! Decomposition for Lossless Synergistic Inference* (ICDCS 2021).
//!
//! [`D3System`] wires the full paper pipeline together:
//!
//! 1. **Profile** — simulate noisy per-layer measurements on each tier's
//!    hardware ([`d3_profiler::Profiler`]),
//! 2. **Estimate** — fit the regression latency model
//!    ([`d3_profiler::RegressionEstimator`], Fig. 4),
//! 3. **Partition** — run HPA over the weighted DAG
//!    ([`d3_partition::hpa()`](fn@d3_partition::hpa), Algorithm 1),
//! 4. **Separate** — vertically split edge conv stacks into fused tiles
//!    ([`d3_vsm::VsmPlan`], Algorithm 2),
//! 5. **Deploy & run** — stream frames through the discrete-event
//!    pipeline and/or execute real tensors across threads
//!    ([`d3_engine`]).
//!
//! ## Quickstart
//!
//! ```
//! use d3_core::D3System;
//! use d3_model::zoo;
//! use d3_simnet::NetworkCondition;
//!
//! let graph = zoo::alexnet(224);
//! let d3 = D3System::builder(&graph)
//!     .network(NetworkCondition::WiFi)
//!     .build();
//! println!("plan: {}", d3.describe_partition());
//! let stats = d3.stream(30.0, 300);
//! assert!(stats.mean_latency_s > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use d3_engine::{Deployment, Strategy, VsmConfig};
pub use d3_model::{DnnGraph, NodeId};
pub use d3_partition::{Assignment, DriftMonitor, HpaOptions, Problem};
pub use d3_profiler::RegressionEstimator;
pub use d3_simnet::{NetworkCondition, Tier, TierProfiles};

use d3_engine::{pipeline::StreamStats, run_distributed, AdaptiveEngine};
use d3_profiler::LatencyProvider;
use d3_tensor::Tensor;

/// Builder for a [`D3System`].
#[derive(Debug, Clone)]
pub struct D3Builder<'g> {
    graph: &'g DnnGraph,
    profiles: TierProfiles,
    net: NetworkCondition,
    hpa: HpaOptions,
    vsm: Option<VsmConfig>,
    regression: Option<RegressionConfig>,
    seed: u64,
}

/// Configuration of the regression latency estimator; when absent the
/// system reads the hardware cost model directly (oracle weights).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegressionConfig {
    /// Relative measurement noise (e.g. `0.05`).
    pub noise_sigma: f64,
    /// Measurement passes per training graph.
    pub repeats: usize,
}

impl<'g> D3Builder<'g> {
    /// Hardware profiles per tier (default: the paper's §IV testbed).
    pub fn profiles(mut self, profiles: TierProfiles) -> Self {
        self.profiles = profiles;
        self
    }

    /// Network condition (default: Wi-Fi, Table III).
    pub fn network(mut self, net: NetworkCondition) -> Self {
        self.net = net;
        self
    }

    /// HPA options (default: the paper's configuration).
    pub fn hpa_options(mut self, opts: HpaOptions) -> Self {
        self.hpa = opts;
        self
    }

    /// Enables VSM with the given config (default: 4 edge nodes, 2×2).
    pub fn vsm(mut self, cfg: VsmConfig) -> Self {
        self.vsm = Some(cfg);
        self
    }

    /// Disables VSM (HPA-only deployment).
    pub fn without_vsm(mut self) -> Self {
        self.vsm = None;
        self
    }

    /// Uses the trained regression estimator for vertex weights instead
    /// of the ground-truth cost model (the paper's actual data path:
    /// profile → regress → partition).
    pub fn with_regression(mut self, cfg: RegressionConfig) -> Self {
        self.regression = Some(cfg);
        self
    }

    /// Seed for weights and profiling noise.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Profiles, estimates, partitions, separates and deploys.
    pub fn build(self) -> D3System<'g> {
        let estimator = self.regression.map(|cfg| {
            RegressionEstimator::train(
                &self.profiles,
                &[self.graph],
                cfg.noise_sigma,
                cfg.repeats,
                self.seed,
            )
        });
        let provider: &dyn LatencyProvider = match &estimator {
            Some(e) => e,
            None => &self.profiles,
        };
        let problem = Problem::new(self.graph, provider, self.net);
        let assignment = d3_partition::hpa(&problem, &self.hpa);
        let deployment = Deployment::new(&problem, assignment, self.vsm);
        D3System {
            graph: self.graph,
            problem,
            estimator,
            deployment,
            hpa: self.hpa,
            vsm: self.vsm,
            seed: self.seed,
        }
    }
}

/// A fully deployed D3 system for one DNN.
pub struct D3System<'g> {
    graph: &'g DnnGraph,
    problem: Problem<'g>,
    estimator: Option<RegressionEstimator>,
    deployment: Deployment,
    hpa: HpaOptions,
    vsm: Option<VsmConfig>,
    seed: u64,
}

impl<'g> D3System<'g> {
    /// Starts building a system for `graph`.
    pub fn builder(graph: &'g DnnGraph) -> D3Builder<'g> {
        D3Builder {
            graph,
            profiles: TierProfiles::paper_testbed(),
            net: NetworkCondition::WiFi,
            hpa: HpaOptions::paper(),
            vsm: Some(VsmConfig::default()),
            regression: None,
            seed: 0xD3,
        }
    }

    /// The model being served.
    pub fn graph(&self) -> &'g DnnGraph {
        self.graph
    }

    /// The weighted partition problem instance.
    pub fn problem(&self) -> &Problem<'g> {
        &self.problem
    }

    /// The HPA tier assignment.
    pub fn partition(&self) -> &Assignment {
        &self.deployment.assignment
    }

    /// The deployed pipeline (stages, Θ, backbone bytes, VSM plans).
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// The trained regression estimator, when enabled.
    pub fn estimator(&self) -> Option<&RegressionEstimator> {
        self.estimator.as_ref()
    }

    /// Single-frame end-to-end latency (the paper's Θ objective).
    pub fn theta_s(&self) -> f64 {
        self.deployment.theta_s
    }

    /// Streams `n_frames` at `fps` through the pipeline simulator.
    pub fn stream(&self, fps: f64, n_frames: usize) -> StreamStats {
        self.deployment.stream(fps, n_frames)
    }

    /// Executes one real input across device/edge/cloud worker threads,
    /// with VSM tile parallelism at the edge when enabled. The output is
    /// bit-identical to single-node inference — the paper's lossless
    /// guarantee.
    pub fn run(&self, input: &Tensor) -> Tensor {
        run_distributed(
            self.graph,
            self.seed,
            &self.deployment.assignment,
            self.vsm,
            input,
        )
    }

    /// Converts into the runtime-adaptive controller (hysteresis-gated
    /// local re-partitioning).
    pub fn into_adaptive(self, monitor: DriftMonitor) -> AdaptiveEngine<'g> {
        AdaptiveEngine::new(self.problem, self.hpa, monitor)
    }

    /// A human-readable summary of the partition, e.g.
    /// `device: 3 layers | edge: 10 layers | cloud: 9 layers`.
    pub fn describe_partition(&self) -> String {
        let a = &self.deployment.assignment;
        let seg = |t: Tier| {
            a.segment(t)
                .iter()
                .filter(|id| **id != self.graph.input())
                .count()
        };
        format!(
            "device: {} layers | edge: {} layers | cloud: {} layers | theta: {:.2} ms",
            seg(Tier::Device),
            seg(Tier::Edge),
            seg(Tier::Cloud),
            self.theta_s() * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_model::zoo;
    use d3_tensor::max_abs_diff;

    #[test]
    fn builder_defaults_deploy() {
        let g = zoo::alexnet(224);
        let d3 = D3System::builder(&g).build();
        assert!(d3.theta_s() > 0.0);
        assert!(d3.partition().is_monotone(d3.problem()));
        let desc = d3.describe_partition();
        assert!(desc.contains("device") && desc.contains("cloud"));
    }

    #[test]
    fn regression_path_produces_valid_plans() {
        let g = zoo::resnet18(224);
        let d3 = D3System::builder(&g)
            .with_regression(RegressionConfig {
                noise_sigma: 0.05,
                repeats: 3,
            })
            .build();
        assert!(d3.estimator().is_some());
        assert!(d3.partition().is_monotone(d3.problem()));
    }

    #[test]
    fn end_to_end_lossless_run() {
        let g = zoo::tiny_cnn(16);
        let d3 = D3System::builder(&g).seed(7).build();
        let input = Tensor::random(3, 16, 16, 21);
        let out = d3.run(&input);
        let expect = d3_model::Executor::new(&g, 7).run(&input);
        assert_eq!(max_abs_diff(&out, &expect), Some(0.0));
    }

    #[test]
    fn adaptive_conversion_preserves_plan_quality() {
        let g = zoo::vgg16(224);
        let d3 = D3System::builder(&g).build();
        let theta = d3.theta_s();
        let adaptive = d3.into_adaptive(DriftMonitor::default());
        assert!((adaptive.current_theta() - theta).abs() < 1e-9);
    }

    #[test]
    fn stream_latency_at_least_single_frame() {
        let g = zoo::darknet53(224);
        let d3 = D3System::builder(&g).build();
        let stats = d3.stream(30.0, 200);
        assert!(stats.mean_latency_s >= d3.deployment().frame_latency_s - 1e-9);
    }

    #[test]
    fn builder_accepts_custom_profiles_and_tiers() {
        let g = zoo::resnet18(224);
        let d3 = D3System::builder(&g)
            .profiles(TierProfiles::rpi_testbed())
            .network(NetworkCondition::FourG)
            .hpa_options(HpaOptions::paper().with_tiers(&[Tier::Edge, Tier::Cloud]))
            .without_vsm()
            .build();
        for id in g.layer_ids() {
            assert_ne!(d3.partition().tier(id), Tier::Device);
        }
        assert!(d3.deployment().vsm_plans.is_empty());
    }

    #[test]
    fn vsm_config_is_respected() {
        let g = zoo::darknet53(224);
        let d3 = D3System::builder(&g)
            .network(NetworkCondition::FourG)
            .vsm(VsmConfig {
                edge_nodes: 9,
                grid: (3, 3),
                min_run_len: 2,
            })
            .build();
        for plan in &d3.deployment().vsm_plans {
            assert_eq!(plan.grid, (3, 3));
        }
    }

    #[test]
    fn estimator_and_oracle_agree_on_plan_quality() {
        // Plans from estimated weights should be near the oracle plan's
        // quality when evaluated under ground truth.
        let g = zoo::darknet53(224);
        let oracle = D3System::builder(&g).build();
        let est = D3System::builder(&g)
            .with_regression(RegressionConfig {
                noise_sigma: 0.05,
                repeats: 3,
            })
            .build();
        // Evaluate both assignments under the ground-truth problem.
        let truth = oracle.problem();
        let oracle_theta = oracle.partition().total_latency(truth);
        let est_theta = est.partition().total_latency(truth);
        assert!(
            est_theta <= oracle_theta * 1.35,
            "estimated plan {est_theta} vs oracle plan {oracle_theta}"
        );
    }
}
