//! Streaming serving sessions: the pipelined execution path behind
//! [`D3Runtime::open_stream`](crate::D3Runtime::open_stream).
//!
//! Where [`serve`](crate::D3Runtime::serve) runs one frame across the
//! tiers and waits, a [`StreamSession`] keeps the plan's device/edge/
//! cloud segments *resident* on dedicated worker threads behind bounded
//! queues: frame `N+1` enters the device stage while frame `N` is still
//! on the edge. Sustained throughput is then set by the slowest stage
//! (the paper's bottleneck phenomenon, §I), not by the end-to-end sum —
//! and [`close`](StreamSession::close) hands back a [`StreamReport`]
//! whose measured [`StreamStats`](d3_engine::StreamStats) is directly
//! comparable to the simulator's prediction.
//!
//! ```
//! use d3_core::{D3Runtime, ModelOptions, StreamOptions};
//! use d3_model::zoo;
//! use d3_tensor::Tensor;
//!
//! let mut rt = D3Runtime::new();
//! rt.register("tiny", zoo::tiny_cnn(16), ModelOptions::new().seed(7))
//!     .unwrap();
//! let session = rt.open_stream("tiny", StreamOptions::new()).unwrap();
//! for k in 0..4 {
//!     session.submit_blocking(&Tensor::random(3, 16, 16, k)).unwrap();
//! }
//! for _ in 0..4 {
//!     let (_id, out) = session.recv().unwrap();
//!     assert!(out.data().iter().all(|v| v.is_finite()));
//! }
//! let report = session.close();
//! assert_eq!(report.measured.frames, 4);
//! ```

use d3_engine::stream::StreamPipeline;
use d3_engine::{FrameId, StreamRecvError, StreamReport, SubmitError};
use d3_tensor::Tensor;

use crate::runtime::ServeError;
use crate::{D3System, StreamOptions};

/// A live streaming session against one registered model.
///
/// Created by [`D3Runtime::open_stream`](crate::D3Runtime::open_stream);
/// the session owns its worker threads and stays valid even if the model
/// is later [`unregister`](crate::D3Runtime::unregister)ed (it captured
/// the deployed plan at open time). Results come back in submission
/// order. Intended for one logical producer/consumer; the methods take
/// `&self`, so a driving thread and a draining thread may share it.
#[derive(Debug)]
pub struct StreamSession {
    model: String,
    pipeline: StreamPipeline,
}

impl StreamSession {
    pub(crate) fn open(
        model: &str,
        system: &D3System,
        options: StreamOptions,
    ) -> Result<Self, ServeError> {
        let pipeline = StreamPipeline::new(
            system.graph_arc().clone(),
            system.weight_seed(),
            system.deployment(),
            system.vsm_config(),
            options,
        )
        .map_err(|e| ServeError::Unstreamable {
            model: model.to_string(),
            reason: e.to_string(),
        })?;
        Ok(Self {
            model: model.to_string(),
            pipeline,
        })
    }

    /// The registered name this session serves.
    #[must_use]
    pub fn model(&self) -> &str {
        &self.model
    }

    /// Admits one frame without blocking; the returned [`FrameId`] pairs
    /// the eventual [`recv`](Self::recv) result with this submission.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Backpressure`] once the ingress queue is full
    /// (admission control: drain results and retry), or
    /// [`SubmitError::ShapeMismatch`] for a wrongly-shaped tensor.
    pub fn submit(&self, input: &Tensor) -> Result<FrameId, SubmitError> {
        self.pipeline.submit(input)
    }

    /// Admits one frame, waiting for queue space instead of rejecting.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShapeMismatch`] for a wrongly-shaped tensor.
    pub fn submit_blocking(&self, input: &Tensor) -> Result<FrameId, SubmitError> {
        self.pipeline.submit_blocking(input)
    }

    /// Waits for the next completed frame (submission order).
    ///
    /// # Errors
    ///
    /// [`StreamRecvError::NoFramesInFlight`] when every admitted frame
    /// was already received.
    pub fn recv(&self) -> Result<(FrameId, Tensor), StreamRecvError> {
        self.pipeline.recv()
    }

    /// Returns the next completed frame if one is ready.
    #[must_use]
    pub fn try_recv(&self) -> Option<(FrameId, Tensor)> {
        self.pipeline.try_recv()
    }

    /// Frames admitted but not yet received.
    #[must_use]
    pub fn pending(&self) -> u64 {
        self.pipeline.pending()
    }

    /// Frames admitted so far.
    #[must_use]
    pub fn submitted(&self) -> u64 {
        self.pipeline.submitted()
    }

    /// Frames rejected by backpressure so far.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.pipeline.rejected()
    }

    /// Stops admissions, drains in-flight frames, joins the stage
    /// workers and reports measured per-stage utilization, p50/p95/max
    /// latency and throughput.
    #[must_use]
    pub fn close(self) -> StreamReport {
        self.pipeline.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{D3Runtime, ModelOptions};
    use d3_model::zoo;

    #[test]
    fn session_survives_unregistration() {
        let mut rt = D3Runtime::new();
        rt.register("tiny", zoo::tiny_cnn(16), ModelOptions::new().seed(5))
            .unwrap();
        let session = rt.open_stream("tiny", StreamOptions::new()).unwrap();
        let expect = rt.serve("tiny", &Tensor::random(3, 16, 16, 8)).unwrap();
        rt.unregister("tiny").unwrap();
        // The session captured the plan: still serving.
        session
            .submit_blocking(&Tensor::random(3, 16, 16, 8))
            .unwrap();
        let (_, got) = session.recv().unwrap();
        assert_eq!(d3_tensor::max_abs_diff(&got, &expect), Some(0.0));
        assert_eq!(session.model(), "tiny");
        let report = session.close();
        assert_eq!(report.measured.frames, 1);
    }

    #[test]
    fn open_stream_unknown_model_is_typed() {
        let rt = D3Runtime::new();
        assert_eq!(
            rt.open_stream("nope", StreamOptions::new()).err(),
            Some(ServeError::UnknownModel("nope".into()))
        );
    }
}
