//! Streaming serving sessions: the pipelined execution path behind
//! [`D3Runtime::open_stream`](crate::D3Runtime::open_stream).
//!
//! Where [`serve`](crate::D3Runtime::serve) runs one frame across the
//! tiers and waits, a [`StreamSession`] keeps the plan's device/edge/
//! cloud segments *resident* on dedicated worker threads behind bounded
//! queues: frame `N+1` enters the device stage while frame `N` is still
//! on the edge. Sustained throughput is then set by the slowest stage
//! (the paper's bottleneck phenomenon, §I), not by the end-to-end sum —
//! and [`close`](StreamSession::close) hands back a [`StreamReport`]
//! whose measured [`StreamStats`](d3_engine::StreamStats) is directly
//! comparable to the simulator's prediction.
//!
//! ## Live adaptation
//!
//! A session is the **apply** end of the observe → decide → apply loop:
//!
//! - [`telemetry`](StreamSession::telemetry) taps the live measurement
//!   stream (per-stage compute per frame, queue depths) the stage
//!   workers publish while frames flow;
//! - with a controller attached
//!   ([`D3Runtime::attach_controller`](crate::D3Runtime::attach_controller)),
//!   [`adapt`](StreamSession::adapt) feeds that telemetry to the
//!   session's own [`AdaptiveEngine`] and applies any emitted
//!   [`PlanUpdate`] mid-stream, while
//!   [`observe`](StreamSession::observe) injects out-of-band
//!   observations (e.g. a bandwidth probe's
//!   [`Observation::Network`](crate::Observation::Network)) into the
//!   same loop;
//! - [`apply_plan`](StreamSession::apply_plan) swaps the running
//!   pipeline onto any externally computed plan — in-flight frames
//!   drain at a frame boundary (zero drops), unchanged stages keep
//!   their prebuilt weights, and outputs stay bit-identical across the
//!   swap.
//!
//! Dropping an un-`close()`d session signals and joins its worker
//! threads; only the final report is lost.
//!
//! ```
//! use d3_core::{D3Runtime, ModelOptions, StreamOptions};
//! use d3_model::zoo;
//! use d3_tensor::Tensor;
//!
//! let mut rt = D3Runtime::new();
//! rt.register("tiny", zoo::tiny_cnn(16), ModelOptions::new().seed(7))
//!     .unwrap();
//! let session = rt.open_stream("tiny", StreamOptions::new()).unwrap();
//! for k in 0..4 {
//!     session.submit_blocking(&Tensor::random(3, 16, 16, k)).unwrap();
//! }
//! for _ in 0..4 {
//!     let (_id, out) = session.recv().unwrap();
//!     assert!(out.data().iter().all(|v| v.is_finite()));
//! }
//! let report = session.close();
//! assert_eq!(report.measured.frames, 4);
//! ```

use d3_engine::stream::StreamPipeline;
use d3_engine::{
    AdaptiveEngine, CodecUpdate, ControlUpdate, Deployment, FleetController, FrameId, Observation,
    PlanSwap, PlanUpdate, PoolResize, SessionId, SessionStats, StreamBuildError, StreamRecvError,
    StreamReport, SubmitError, TelemetryTap, UpdateScope, VsmConfig,
};
use d3_model::NodeId;
use d3_partition::{Assignment, Problem};
use d3_simnet::Tier;
use d3_tensor::Tensor;
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard, Weak};
use std::time::Duration;

use crate::runtime::ServeError;
use crate::{D3System, StreamOptions};

/// How long a blocking receive holds the shared read lock before
/// re-checking: short enough that a control-plane write (plan swap, pool
/// resize) never waits noticeably behind a parked receiver.
const RECV_SLICE: Duration = Duration::from_millis(1);

/// One model's resident stage-pool set, shared by every session opened
/// on it while at least one is alive.
///
/// The data plane (submit/recv) runs under the read lock — any number of
/// sessions stream concurrently — while control operations (plan swaps,
/// pool resizes, failover reroutes) take the write lock, so the shared
/// pipeline quiesces exactly once per reconfiguration no matter how many
/// sessions are attached. The runtime keeps only a [`Weak`] to this:
/// when the last session drops its [`Arc`], the pipeline closes and the
/// stage workers join.
#[derive(Debug)]
pub(crate) struct SharedStream {
    pipeline: RwLock<StreamPipeline>,
}

/// A session's membership in a runtime-attached fleet: the tenant name
/// plus the shared arbiter. Observations route through the fleet, and
/// coordinated updates for this tenant arrive via its mailbox.
#[derive(Debug)]
pub(crate) struct FleetHandle {
    pub(crate) tenant: String,
    pub(crate) fleet: Arc<Mutex<FleetController>>,
}

/// One change a session's adaptation loop applied to the running stream:
/// a plan swap, a worker-pool resize, or a per-link codec switch.
/// Returned by [`StreamSession::observe`] and [`StreamSession::adapt`].
#[derive(Debug, Clone)]
pub enum AdaptEvent {
    /// The controller re-partitioned and the stream swapped plans.
    Plan(PlanSwap),
    /// The controller resized one stage's worker pool.
    Pool(PoolResize),
    /// The controller switched one inter-tier link's wire codec.
    Codec(CodecUpdate),
}

/// A live streaming session against one registered model.
///
/// Created by [`D3Runtime::open_stream`](crate::D3Runtime::open_stream).
/// Sessions of the **same model multiplex onto one shared resident
/// pipeline**: the first session builds the stage-pool set (its
/// [`StreamOptions`] configure it), later sessions attach to it with
/// their own fair-share [`weight`](StreamOptions::weight) — no new
/// threads. Each session still sees only its own frames, bit-identical
/// and in its own submission order; the shared batcher may coalesce
/// frames *across* sessions. The whole set stays valid even if the model
/// is later [`unregister`](crate::D3Runtime::unregister)ed (the pipeline
/// captured the deployed plan at open time).
///
/// The frame methods take `&self`, so a driving thread and a draining
/// thread may share one session, while reconfiguration
/// ([`apply_plan`](Self::apply_plan), [`observe`](Self::observe),
/// [`adapt`](Self::adapt)) takes `&mut self` and briefly write-locks the
/// shared pipeline — it quiesces exactly once while *every* attached
/// session stays lossless.
#[derive(Debug)]
pub struct StreamSession {
    model: String,
    /// The shared resident pipeline; `None` only transiently inside
    /// [`close`](Self::close). Dropping the last `Arc` closes the
    /// pipeline and joins the stage workers.
    shared: Option<Arc<SharedStream>>,
    /// This session's identity at the shared admission gate.
    sid: SessionId,
    /// The model's partitioning problem, captured at open time — the
    /// cost model a failover reroute plan is deployed against.
    problem: Problem,
    /// The model's VSM config, captured at open time (reroute plans
    /// keep it).
    vsm: Option<VsmConfig>,
    /// Per-session adaptation controller (present when the runtime had a
    /// policy attached at open time and the model is not a fleet
    /// tenant).
    controller: Option<AdaptiveEngine>,
    /// Fleet membership (present when the runtime had a fleet controller
    /// attached covering this model).
    fleet: Option<FleetHandle>,
}

impl StreamSession {
    pub(crate) fn open(
        model: &str,
        system: &D3System,
        slot: &Mutex<Weak<SharedStream>>,
        mut options: StreamOptions,
        controller: Option<AdaptiveEngine>,
        fleet: Option<FleetHandle>,
    ) -> Result<Self, ServeError> {
        let mut slot = slot.lock().expect("stream slot lock poisoned");
        // A live shared pipeline for this model: attach instead of
        // spawning. Only `options.weight` applies — the founding
        // session's options already configured the resident stages.
        if let Some(shared) = slot.upgrade() {
            if !(options.weight.is_finite() && options.weight > 0.0) {
                return Err(ServeError::Unstreamable {
                    model: model.to_string(),
                    reason: "session weight must be positive and finite".to_string(),
                });
            }
            let sid = shared
                .pipeline
                .read()
                .expect("stream lock poisoned")
                .attach_session(options.weight);
            return Ok(Self {
                model: model.to_string(),
                shared: Some(shared),
                sid,
                problem: system.problem().clone(),
                vsm: system.vsm_config(),
                controller,
                fleet,
            });
        }
        // Founding session: build the resident stage-pool set.
        // Seed the bandwidth prober's belief with the model's configured
        // network condition unless the caller pinned one explicitly.
        if let Some(probe) = &mut options.probe {
            if probe.initial.is_none() {
                probe.initial = Some(system.problem().net());
            }
        }
        let pipeline = StreamPipeline::new(
            system.graph_arc().clone(),
            system.weight_seed(),
            system.deployment(),
            system.vsm_config(),
            options,
        )
        .map_err(|e| ServeError::Unstreamable {
            model: model.to_string(),
            reason: e.to_string(),
        })?;
        let sid = pipeline.root_session();
        let shared = Arc::new(SharedStream {
            pipeline: RwLock::new(pipeline),
        });
        *slot = Arc::downgrade(&shared);
        Ok(Self {
            model: model.to_string(),
            shared: Some(shared),
            sid,
            problem: system.problem().clone(),
            vsm: system.vsm_config(),
            controller,
            fleet,
        })
    }

    fn shared(&self) -> &Arc<SharedStream> {
        self.shared.as_ref().expect("session live until close")
    }

    /// Data-plane access: any number of sessions hold this concurrently.
    fn pipeline(&self) -> RwLockReadGuard<'_, StreamPipeline> {
        self.shared().pipeline.read().expect("stream lock poisoned")
    }

    /// Control-plane access: quiesces the *shared* pipeline exactly once
    /// per reconfiguration, with every attached session paused at the
    /// lock (not dropped).
    fn pipeline_mut(&self) -> RwLockWriteGuard<'_, StreamPipeline> {
        self.shared()
            .pipeline
            .write()
            .expect("stream lock poisoned")
    }

    /// The registered name this session serves.
    #[must_use]
    pub fn model(&self) -> &str {
        &self.model
    }

    /// This session's identity on the shared pipeline.
    #[must_use]
    pub fn session_id(&self) -> SessionId {
        self.sid
    }

    /// Whether `other` multiplexes onto the same resident pipeline (same
    /// model, overlapping lifetime).
    #[must_use]
    pub fn is_shared_with(&self, other: &StreamSession) -> bool {
        Arc::ptr_eq(self.shared(), other.shared())
    }

    /// Live per-session statistics: this session's frames, weighted
    /// share, delivery-latency percentiles and throughput on the shared
    /// pipeline.
    #[must_use]
    pub fn session_stats(&self) -> Option<SessionStats> {
        self.pipeline().session_stats(self.sid)
    }

    /// Number of sessions currently attached to this model's shared
    /// pipeline (including this one).
    #[must_use]
    pub fn attached_sessions(&self) -> usize {
        self.pipeline().sessions().len()
    }

    /// Admits one frame without blocking; the returned [`FrameId`] pairs
    /// the eventual [`recv`](Self::recv) result with this submission.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Backpressure`] once the ingress queue is full
    /// (admission control: drain results and retry), or
    /// [`SubmitError::ShapeMismatch`] for a wrongly-shaped tensor.
    pub fn submit(&self, input: &Tensor) -> Result<FrameId, SubmitError> {
        self.pipeline().submit_as(self.sid, input)
    }

    /// Admits one frame, waiting for queue space (or for this session's
    /// weighted share of it) instead of rejecting.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShapeMismatch`] for a wrongly-shaped tensor.
    pub fn submit_blocking(&self, input: &Tensor) -> Result<FrameId, SubmitError> {
        self.pipeline().submit_blocking_as(self.sid, input)
    }

    /// Waits for this session's next completed frame (its own submission
    /// order, including across plan swaps; other sessions' frames are
    /// never visible here).
    ///
    /// # Errors
    ///
    /// [`StreamRecvError::NoFramesInFlight`] when every frame this
    /// session admitted was already received.
    pub fn recv(&self) -> Result<(FrameId, Tensor), StreamRecvError> {
        // Re-acquire the shared read lock per slice so a concurrent
        // control-plane write never waits behind a parked receiver.
        loop {
            if let Some(frame) = self.pipeline().recv_step_as(self.sid, RECV_SLICE)? {
                return Ok(frame);
            }
        }
    }

    /// Returns this session's next completed frame if one is ready.
    #[must_use]
    pub fn try_recv(&self) -> Option<(FrameId, Tensor)> {
        self.pipeline().try_recv_as(self.sid)
    }

    /// Frames **this session** admitted but has not yet received.
    #[must_use]
    pub fn pending(&self) -> u64 {
        self.pipeline().pending_as(self.sid)
    }

    /// Frames admitted so far, across every session sharing the
    /// pipeline (see [`session_stats`](Self::session_stats) for this
    /// session's own count).
    #[must_use]
    pub fn submitted(&self) -> u64 {
        self.pipeline().submitted()
    }

    /// Frames rejected by backpressure so far, across every session
    /// sharing the pipeline.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.pipeline().rejected()
    }

    /// The plan the shared pipeline is currently executing (changes when
    /// a swap is applied).
    #[must_use]
    pub fn assignment(&self) -> Assignment {
        self.pipeline().assignment().clone()
    }

    /// Live plan swaps applied so far on the shared pipeline.
    #[must_use]
    pub fn reconfigurations(&self) -> u64 {
        self.pipeline().reconfigurations()
    }

    /// Opens a live telemetry tap: periodic per-stage snapshots
    /// (measured compute per frame, ingress queue depth) published by
    /// the stage workers while frames flow. With a controller attached,
    /// prefer [`adapt`](Self::adapt) — an external tap and the
    /// controller would *steal* snapshots from each other.
    #[must_use]
    pub fn telemetry(&self) -> TelemetryTap {
        self.pipeline().telemetry()
    }

    /// The session's adaptation controller, when one was attached at
    /// open time. Fleet sessions return `None` — their engine lives in
    /// the shared [`FleetController`]; see
    /// [`fleet_tenant`](Self::fleet_tenant).
    #[must_use]
    pub fn controller(&self) -> Option<&AdaptiveEngine> {
        self.controller.as_ref()
    }

    /// The fleet tenant name this session arbitrates under, when the
    /// runtime had a fleet controller attached at open time.
    #[must_use]
    pub fn fleet_tenant(&self) -> Option<&str> {
        self.fleet.as_ref().map(|h| h.tenant.as_str())
    }

    /// Swaps the running stream onto `update`'s plan at a frame
    /// boundary: zero dropped frames, unchanged stages keep their
    /// prebuilt weights, outputs stay bit-identical. For sessions with
    /// an attached controller, prefer [`observe`](Self::observe)/
    /// [`adapt`](Self::adapt), which keep the controller's view of the
    /// plan in sync.
    ///
    /// # Errors
    ///
    /// [`StreamBuildError`] when the plan cannot run as a forward
    /// pipeline; the running stream is untouched.
    pub fn apply_plan(&mut self, update: &PlanUpdate) -> Result<PlanSwap, StreamBuildError> {
        self.pipeline_mut().apply_plan(update)
    }

    /// Checks whether a remote stage server stayed down past its
    /// failover deadline and, if so, reroutes around it: the dead
    /// tier's layers move to the cloud segment (a dead cloud's move to
    /// the edge), the remote transport is dropped so the rerouted stage
    /// runs in-process, and the stream swaps onto the new plan at the
    /// usual lossless frame boundary — every frame the dead peer held
    /// un-acked is re-executed locally, none lost. Call it periodically
    /// from the driving loop when a tier runs remote. Returns the failed
    /// tier and the applied swap, or `None` while all peers are healthy.
    pub fn check_failover(&mut self) -> Option<(Tier, PlanSwap)> {
        // One write-lock scope for detect + reroute, so no other
        // session's control plane can interleave mid-failover.
        let mut pipeline = self.pipeline_mut();
        let failed = pipeline.failed_remote()?;
        pipeline.drop_remote(failed);
        let target = if failed == Tier::Cloud {
            Tier::Edge
        } else {
            Tier::Cloud
        };
        let mut assignment = pipeline.assignment().clone();
        let mut changed = Vec::new();
        for id in (0..assignment.len()).map(NodeId) {
            if assignment.tier(id) == failed {
                assignment.set_tier(id, target);
                changed.push(id);
            }
        }
        let update = PlanUpdate {
            deployment: Deployment::new(&self.problem, assignment, self.vsm),
            changed,
            scope: UpdateScope::Full,
        };
        let swap = pipeline
            .apply_plan(&update)
            .expect("failover reroute must remain a forward pipeline");
        Some((failed, swap))
    }

    /// Resizes one stage's worker pool live, at the same lossless frame
    /// boundary plan swaps use (see `StreamPipeline::resize_pool`).
    ///
    /// # Errors
    ///
    /// [`StreamBuildError::ZeroPool`] when `workers` is zero; the
    /// running stream is untouched.
    pub fn resize_pool(
        &mut self,
        tier: Tier,
        workers: usize,
    ) -> Result<PoolResize, StreamBuildError> {
        self.pipeline_mut().resize_pool(tier, workers)
    }

    /// Current workers per stage, in tier order (device, edge, cloud).
    #[must_use]
    pub fn pool(&self) -> [usize; 3] {
        self.pipeline().pool()
    }

    /// The wire codec currently active per inter-tier link
    /// (`[device→edge, edge→cloud]`). Changes when the controller
    /// applies a [`CodecUpdate`] or the stream options selected one.
    #[must_use]
    pub fn link_codecs(&self) -> [d3_engine::WireCodec; 2] {
        self.pipeline().link_codecs()
    }

    /// Injects one out-of-band observation (e.g. a bandwidth probe's
    /// reading, a queue-depth report, or simulated drift) into the
    /// session's adaptation loop and applies every resulting update
    /// mid-stream. Returns the applied events — empty when the
    /// controller held, or when neither a controller nor a fleet is
    /// attached (the observation is then dropped; check
    /// [`controller`](Self::controller) /
    /// [`fleet_tenant`](Self::fleet_tenant)).
    ///
    /// Fleet sessions first drain coordinated updates queued for them by
    /// other tenants' decisions (their mailbox), then arbitrate the
    /// observation fleet-wide; a single call can therefore apply several
    /// events (e.g. a mailbox eviction plus this observation's swap).
    pub fn observe(&mut self, obs: &Observation) -> Vec<AdaptEvent> {
        if self.fleet.is_some() {
            let mut events = self.poll_fleet();
            for update in self.fleet_ingest(obs) {
                events.push(self.apply_update(&update));
            }
            return events;
        }
        let Some(update) = self.controller.as_mut().and_then(|c| c.ingest(obs)) else {
            return Vec::new();
        };
        vec![self.apply_update(&update)]
    }

    /// Arbitrates one observation through the fleet and returns the
    /// updates addressed to **this** tenant (updates for other tenants
    /// are already queued in their mailboxes by the controller).
    fn fleet_ingest(&self, obs: &Observation) -> Vec<ControlUpdate> {
        let handle = self.fleet.as_ref().expect("fleet session");
        let updates = handle
            .fleet
            .lock()
            .expect("fleet controller lock poisoned")
            .ingest(&handle.tenant, obs);
        updates
            .into_iter()
            .filter(|u| u.tenant == handle.tenant)
            .map(|u| u.update)
            .collect()
    }

    /// Applies every coordinated update other tenants' decisions queued
    /// for this session (the fleet mailbox — e.g. an eviction freeing a
    /// shared tier for a higher-priority model). Empty for non-fleet
    /// sessions and when nothing is queued. [`observe`](Self::observe)
    /// and [`adapt`](Self::adapt) drain the mailbox automatically; call
    /// this from sessions that only pump frames.
    pub fn poll_fleet(&mut self) -> Vec<AdaptEvent> {
        let Some(handle) = &self.fleet else {
            return Vec::new();
        };
        let updates = handle
            .fleet
            .lock()
            .expect("fleet controller lock poisoned")
            .take_mailbox(&handle.tenant);
        updates
            .iter()
            .map(|update| self.apply_update(update))
            .collect()
    }

    /// Runs one adaptation cycle: drains the session's live telemetry
    /// into the attached controller (or the fleet arbiter) and applies
    /// the emitted updates mid-stream — a plan swap for timing/network
    /// drift, a pool resize for sustained queue-depth pressure. Call it
    /// periodically from the driving loop (e.g. once per drained batch
    /// of results). Returns the applied events (empty when nothing
    /// drifted or no controller is attached). Fleet sessions also drain
    /// their mailbox first.
    ///
    /// At most one telemetry-driven event burst is applied per cycle:
    /// snapshots remaining in the batch after a swap or resize were
    /// measured under the *old* configuration — stale readings that
    /// would mis-calibrate the controller's fresh anchors or
    /// double-trigger the autoscaler — so they are discarded, exactly
    /// like the queued snapshots the pipeline itself flushes at the
    /// reconfiguration boundary.
    pub fn adapt(&mut self) -> Vec<AdaptEvent> {
        if self.fleet.is_some() {
            let mut events = self.poll_fleet();
            let snapshots = self.pipeline().telemetry().drain();
            'snapshots: for snapshot in &snapshots {
                for obs in &snapshot.observations {
                    let own = self.fleet_ingest(obs);
                    if !own.is_empty() {
                        for update in &own {
                            events.push(self.apply_update(update));
                        }
                        break 'snapshots; // rest of the batch predates the change
                    }
                }
            }
            return events;
        }
        if self.controller.is_none() {
            return Vec::new();
        }
        let snapshots = self.pipeline().telemetry().drain();
        let mut events = Vec::new();
        'snapshots: for snapshot in &snapshots {
            for obs in &snapshot.observations {
                let controller = self.controller.as_mut().expect("checked above");
                if let Some(update) = controller.ingest(obs) {
                    events.push(self.apply_update(&update));
                    break 'snapshots; // rest of the batch predates the change
                }
            }
        }
        events
    }

    /// Applies a controller-emitted update. Controllers only emit plans
    /// that already passed the partitioners' invariants (monotone, same
    /// graph) and positive pool sizes, so a rejection here is a bug
    /// worth failing loudly on.
    fn apply_update(&mut self, update: &ControlUpdate) -> AdaptEvent {
        match update {
            ControlUpdate::Plan(plan) => AdaptEvent::Plan(
                self.pipeline_mut()
                    .apply_plan(plan)
                    .expect("controller emitted an unstreamable plan"),
            ),
            ControlUpdate::Pool(pool) => AdaptEvent::Pool(
                self.pipeline_mut()
                    .resize_pool(pool.tier, pool.workers)
                    .expect("controller emitted an empty pool"),
            ),
            ControlUpdate::Codec(codec) => {
                // Quiesce-free: frames are self-describing, so the switch
                // simply lands on the next batch boundary.
                self.pipeline().set_link_codec(codec.link, codec.codec);
                AdaptEvent::Codec(*codec)
            }
        }
    }

    /// Detaches from the shared pipeline and reports.
    ///
    /// The **last** session of a model to close gets the full aggregate
    /// [`StreamReport`]: the pipeline drains, the stage workers join,
    /// and `report.sessions` carries every still-attached session's
    /// view (a solo session is always "last", so nothing changes for
    /// single-stream callers). A session closing while **others** remain
    /// attached first drains its own pending frames — losslessness per
    /// session — then detaches, and its report covers only its own
    /// traffic (`measured` is synthesized from its [`SessionStats`];
    /// shared stage/pool/link accounting stays with the survivors).
    #[must_use]
    pub fn close(mut self) -> StreamReport {
        let shared = self.shared.take().expect("close takes the session");
        match Arc::try_unwrap(shared) {
            Ok(exclusive) => exclusive
                .pipeline
                .into_inner()
                .expect("stream lock poisoned")
                .close(),
            Err(shared) => {
                // Other sessions still stream: drain our own frames so
                // none are abandoned in the shared reorder buffer, then
                // detach and leave the pipeline running.
                loop {
                    let pipeline = shared.pipeline.read().expect("stream lock poisoned");
                    if pipeline.pending_as(self.sid) == 0 {
                        break;
                    }
                    if pipeline.recv_step_as(self.sid, RECV_SLICE).is_err() {
                        break; // workers died; nothing more will arrive
                    }
                }
                let pipeline = shared.pipeline.read().expect("stream lock poisoned");
                let reconfigurations = pipeline.reconfigurations();
                let stats = pipeline
                    .detach_session(self.sid)
                    .expect("session attached until close");
                Self::solo_report(stats, reconfigurations)
            }
        }
    }

    /// A [`StreamReport`] covering one detached session's traffic:
    /// `measured` comes from its per-session tallies; pipeline-wide
    /// accounting (stage specs, utilization, link bytes) is left empty —
    /// it belongs to the shared pipeline's final report.
    fn solo_report(stats: SessionStats, reconfigurations: u64) -> StreamReport {
        let wall_s = if stats.throughput_fps > 0.0 {
            stats.frames as f64 / stats.throughput_fps
        } else {
            0.0
        };
        StreamReport {
            measured: d3_engine::StreamStats {
                frames: stats.frames as usize,
                mean_latency_s: stats.mean_latency_s,
                max_latency_s: stats.max_latency_s,
                p50_latency_s: stats.p50_latency_s,
                p95_latency_s: stats.p95_latency_s,
                p99_latency_s: stats.p99_latency_s,
                throughput_fps: stats.throughput_fps,
                utilization: Vec::new(),
            },
            predicted: Vec::new(),
            server_names: Vec::new(),
            busy_s: Vec::new(),
            wall_s,
            submitted: stats.submitted,
            rejected: stats.rejected,
            reconfigurations,
            stage_pools: Vec::new(),
            link_raw_bytes: 0,
            link_wire_bytes: 0,
            max_accuracy_delta: 0.0,
            sessions: vec![stats],
        }
    }
}

impl Drop for StreamSession {
    fn drop(&mut self) {
        // A session dropped without close() still detaches, so its
        // weighted share frees and its undrained frames are discarded
        // instead of pinning the shared reorder buffer. When this Arc is
        // the last one, dropping it closes the pipeline and joins the
        // stage workers (only the final report is lost).
        if let Some(shared) = self.shared.take() {
            if let Ok(pipeline) = shared.pipeline.read() {
                let _ = pipeline.detach_session(self.sid);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{D3Runtime, HysteresisLocal, ModelOptions, NetworkCondition};
    use d3_model::zoo;
    use d3_partition::DriftMonitor;

    #[test]
    fn session_survives_unregistration() {
        let mut rt = D3Runtime::new();
        rt.register("tiny", zoo::tiny_cnn(16), ModelOptions::new().seed(5))
            .unwrap();
        let session = rt.open_stream("tiny", StreamOptions::new()).unwrap();
        let expect = rt.serve("tiny", &Tensor::random(3, 16, 16, 8)).unwrap();
        rt.unregister("tiny").unwrap();
        // The session captured the plan: still serving.
        session
            .submit_blocking(&Tensor::random(3, 16, 16, 8))
            .unwrap();
        let (_, got) = session.recv().unwrap();
        assert_eq!(d3_tensor::max_abs_diff(&got, &expect), Some(0.0));
        assert_eq!(session.model(), "tiny");
        let report = session.close();
        assert_eq!(report.measured.frames, 1);
    }

    #[test]
    fn same_model_sessions_multiplex_onto_one_pipeline() {
        let mut rt = D3Runtime::new();
        rt.register("tiny", zoo::tiny_cnn(16), ModelOptions::new().seed(5))
            .unwrap()
            .register("other", zoo::tiny_cnn(16), ModelOptions::new().seed(5))
            .unwrap();
        let first = rt.open_stream("tiny", StreamOptions::new()).unwrap();
        let second = rt
            .open_stream("tiny", StreamOptions::new().weight(2.0))
            .unwrap();
        let foreign = rt.open_stream("other", StreamOptions::new()).unwrap();
        assert!(
            first.is_shared_with(&second),
            "same model shares a pipeline"
        );
        assert!(!first.is_shared_with(&foreign), "models never share");
        assert_ne!(first.session_id(), second.session_id());
        assert_eq!(first.attached_sessions(), 2);

        // Each session sees only its own frames, lossless and in order.
        let expect_a = rt.serve("tiny", &Tensor::random(3, 16, 16, 21)).unwrap();
        let expect_b = rt.serve("tiny", &Tensor::random(3, 16, 16, 22)).unwrap();
        second
            .submit_blocking(&Tensor::random(3, 16, 16, 22))
            .unwrap();
        first
            .submit_blocking(&Tensor::random(3, 16, 16, 21))
            .unwrap();
        let (id_a, got_a) = first.recv().unwrap();
        let (id_b, got_b) = second.recv().unwrap();
        assert_eq!((id_a, id_b), (FrameId(0), FrameId(0)));
        assert_eq!(d3_tensor::max_abs_diff(&got_a, &expect_a), Some(0.0));
        assert_eq!(d3_tensor::max_abs_diff(&got_b, &expect_b), Some(0.0));

        // Non-last close: a per-session report, pipeline keeps serving.
        let second_report = second.close();
        assert_eq!(second_report.measured.frames, 1);
        assert_eq!(second_report.sessions.len(), 1);
        assert_eq!(second_report.sessions[0].weight, 2.0);
        assert_eq!(first.attached_sessions(), 1);
        first
            .submit_blocking(&Tensor::random(3, 16, 16, 21))
            .unwrap();
        let _ = first.recv().unwrap();

        // Last close: the full aggregate report of the shared pipeline.
        let report = first.close();
        assert_eq!(report.measured.frames, 3, "aggregate counts all sessions");
        assert_eq!(report.sessions.len(), 1, "only still-attached sessions");

        // With every session gone the pipeline closed: the next open
        // founds a fresh one.
        let fresh = rt.open_stream("tiny", StreamOptions::new()).unwrap();
        assert_eq!(fresh.attached_sessions(), 1);
        let _ = fresh.close();
        let _ = foreign.close();
    }

    #[test]
    fn dropped_session_detaches_from_the_shared_pipeline() {
        let mut rt = D3Runtime::new();
        rt.register("tiny", zoo::tiny_cnn(16), ModelOptions::new().seed(5))
            .unwrap();
        let keeper = rt.open_stream("tiny", StreamOptions::new()).unwrap();
        let dropped = rt.open_stream("tiny", StreamOptions::new()).unwrap();
        assert_eq!(keeper.attached_sessions(), 2);
        drop(dropped);
        assert_eq!(keeper.attached_sessions(), 1, "drop detaches its session");
        keeper
            .submit_blocking(&Tensor::random(3, 16, 16, 4))
            .unwrap();
        let _ = keeper.recv().unwrap();
        let report = keeper.close();
        assert_eq!(report.measured.frames, 1);
    }

    #[test]
    fn joining_with_bad_weight_is_a_typed_error() {
        let mut rt = D3Runtime::new();
        rt.register("tiny", zoo::tiny_cnn(16), ModelOptions::new())
            .unwrap();
        let anchor = rt.open_stream("tiny", StreamOptions::new()).unwrap();
        let mut zero = StreamOptions::new();
        zero.weight = 0.0;
        let err = rt
            .open_stream("tiny", zero)
            .err()
            .expect("zero weight rejected");
        assert!(matches!(err, ServeError::Unstreamable { .. }));
        let _ = anchor.close();
    }

    #[test]
    fn open_stream_unknown_model_is_typed() {
        let rt = D3Runtime::new();
        assert_eq!(
            rt.open_stream("nope", StreamOptions::new()).err(),
            Some(ServeError::UnknownModel("nope".into()))
        );
    }

    #[test]
    fn sessions_without_attached_policy_have_no_controller() {
        let mut rt = D3Runtime::new();
        rt.register("tiny", zoo::tiny_cnn(16), ModelOptions::new())
            .unwrap();
        let mut session = rt.open_stream("tiny", StreamOptions::new()).unwrap();
        assert!(session.controller().is_none());
        assert!(session.fleet_tenant().is_none());
        // Observations are dropped, adapt is a no-op — never a panic.
        assert!(session
            .observe(&Observation::Network {
                net: NetworkCondition::custom_backbone(1.0)
            })
            .is_empty());
        assert!(session.adapt().is_empty());
        assert!(session.poll_fleet().is_empty());
        let _ = session.close();
    }

    #[test]
    fn attach_controller_arms_new_sessions() {
        let mut rt = D3Runtime::new();
        rt.register("tiny", zoo::tiny_cnn(16), ModelOptions::new().seed(3))
            .unwrap();
        rt.attach_controller("tiny", Box::new(HysteresisLocal(DriftMonitor::default())))
            .unwrap();
        let session = rt.open_stream("tiny", StreamOptions::new()).unwrap();
        let controller = session.controller().expect("controller attached");
        assert_eq!(controller.policy_name(), "hysteresis-local");
        assert_eq!(
            controller.assignment().tiers(),
            session.assignment().tiers(),
            "controller starts from the deployed plan"
        );
        let _ = session.close();
    }

    #[test]
    fn attach_controller_unknown_model_is_typed() {
        let mut rt = D3Runtime::new();
        assert!(matches!(
            rt.attach_controller("nope", Box::new(HysteresisLocal::default())),
            Err(ServeError::UnknownModel(_))
        ));
        assert!(rt.detach_controller("nope").is_none());
    }
}
