//! # xtask — the workspace task runner
//!
//! `cargo xtask lint` runs the repo-invariant lint: a source scan over
//! `crates/` enforcing the concurrency hygiene rules the model checker
//! and the clock seam rely on, ratcheted against a committed baseline
//! (`ci/lint_baseline.json`). Existing violations are grandfathered at
//! their current per-file counts; any *increase* fails the build, any
//! decrease is advisory until the baseline is re-recorded with
//! `cargo xtask lint --update-baseline`.
//!
//! The rules (see [`RULES`]):
//!
//! - **engine-unwrap** — no `.unwrap()` / `.expect(` in
//!   `crates/engine/src` non-test code. Panicking on a poisoned lock or
//!   a dead worker takes the whole pipeline down; the typed-error paths
//!   (`SubmitError`, `StreamRecvError`) exist for a reason.
//! - **thread-sleep** — no `std::thread::sleep` in `crates/`. Sleeping
//!   for synchronization hides races the model checker would otherwise
//!   surface; the sanctioned sites (shaped-link delays, the idle
//!   prober's pacing, admission backoff) carry explicit
//!   `xtask:allow(thread-sleep)` markers.
//! - **raw-instant** — no `Instant::now()` outside the clock seam
//!   (`crates/engine/src/clock.rs`). Timestamps must flow through the
//!   engine `Clock` so tests and the model checker can drive time
//!   manually.
//! - **unbounded-channel** — no `unbounded(` channel constructors.
//!   Every queue in the pipeline is bounded so backpressure composes;
//!   an unbounded queue turns overload into unbounded memory growth.
//!
//! A violation is silenced in place with a marker comment on the same
//! line or in the comment block directly above it:
//! `// xtask:allow(<rule>): <why>`.
//! Markers require a justification by convention — they are grep-able
//! review anchors, not escape hatches.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One lint rule: a name (used in baseline keys and allow markers), a
/// human explanation, and the matcher run against each comment-stripped
/// source line.
struct Rule {
    name: &'static str,
    explanation: &'static str,
    matches: fn(&str, &Path) -> bool,
    /// Whether the rule applies to this file at all.
    applies: fn(&Path) -> bool,
}

fn in_engine_src(path: &Path) -> bool {
    path.starts_with("crates/engine/src")
}

fn any_crate(_: &Path) -> bool {
    true
}

/// The repo-invariant rule set.
const RULES: &[Rule] = &[
    Rule {
        name: "engine-unwrap",
        explanation: "`.unwrap()`/`.expect(` in engine non-test code — use the typed error paths",
        matches: |line, _| line.contains(".unwrap()") || line.contains(".expect("),
        applies: in_engine_src,
    },
    Rule {
        name: "thread-sleep",
        explanation:
            "`thread::sleep` — sleeping for synchronization hides races; mark deliberate waits",
        matches: |line, _| line.contains("thread::sleep"),
        applies: any_crate,
    },
    Rule {
        name: "raw-instant",
        explanation: "`Instant::now()` outside the clock seam — route timestamps through `Clock`",
        matches: |line, path| {
            line.contains("Instant::now()") && path != Path::new("crates/engine/src/clock.rs")
        },
        applies: any_crate,
    },
    Rule {
        name: "unbounded-channel",
        explanation: "`unbounded(` channel constructor — every pipeline queue must be bounded",
        matches: |line, _| line.contains("unbounded("),
        applies: any_crate,
    },
];

/// A single rule hit, for reporting.
struct Violation {
    rule: &'static str,
    path: PathBuf,
    line_no: usize,
    line: String,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("usage: cargo xtask lint [--update-baseline]");
        return ExitCode::FAILURE;
    };
    match command.as_str() {
        "lint" => {
            let update = match args.next().as_deref() {
                None => false,
                Some("--update-baseline") => true,
                Some(other) => {
                    eprintln!("unknown lint flag `{other}` (expected --update-baseline)");
                    return ExitCode::FAILURE;
                }
            };
            lint(update)
        }
        other => {
            eprintln!("unknown xtask command `{other}` (expected `lint`)");
            ExitCode::FAILURE
        }
    }
}

/// Runs the scan and ratchets it against `ci/lint_baseline.json`.
fn lint(update_baseline: bool) -> ExitCode {
    let root = workspace_root();
    let baseline_path = root.join("ci/lint_baseline.json");

    let mut violations = Vec::new();
    for file in rust_sources(&root.join("crates")) {
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let rel = PathBuf::from(rel);
        // The linter does not lint itself: its rule patterns would
        // trip every rule.
        if rel.starts_with("crates/xtask") {
            continue;
        }
        let Ok(source) = std::fs::read_to_string(&file) else {
            eprintln!("warning: unreadable source file {}", file.display());
            continue;
        };
        scan_file(&rel, &source, &mut violations);
    }

    // Collapse to the baseline's shape: per-rule-per-file counts.
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for v in &violations {
        *counts
            .entry(format!("{}:{}", v.rule, v.path.display()))
            .or_default() += 1;
    }

    if update_baseline {
        let serialized = serialize_baseline(&counts);
        if let Err(err) = std::fs::write(&baseline_path, serialized) {
            eprintln!("error: cannot write {}: {err}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "lint baseline updated: {} grandfathered hit(s) across {} key(s)",
            counts.values().sum::<usize>(),
            counts.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match parse_baseline(&text) {
            Ok(map) => map,
            Err(err) => {
                eprintln!("error: malformed {}: {err}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        },
        Err(_) => {
            eprintln!(
                "error: missing {} — run `cargo xtask lint --update-baseline` once and commit it",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
    };

    report(&violations, &counts, &baseline)
}

/// Compares current counts against the ratchet and prints the verdict.
fn report(
    violations: &[Violation],
    counts: &BTreeMap<String, usize>,
    baseline: &BTreeMap<String, usize>,
) -> ExitCode {
    let mut regressed = false;
    let mut improved = 0usize;
    for (key, &count) in counts {
        let allowed = baseline.get(key).copied().unwrap_or(0);
        if count > allowed {
            regressed = true;
            let (rule, path) = key.split_once(':').unwrap_or((key, ""));
            let explanation = RULES
                .iter()
                .find(|r| r.name == rule)
                .map_or("", |r| r.explanation);
            eprintln!("lint: {path}: {count} `{rule}` hit(s), baseline allows {allowed}");
            eprintln!("      {explanation}");
            for v in violations
                .iter()
                .filter(|v| v.rule == rule && v.path == Path::new(path))
            {
                eprintln!("      {}:{}: {}", path, v.line_no, v.line.trim());
            }
            eprintln!(
                "      silence a deliberate use with `// xtask:allow({rule}): <why>` on the same or preceding line"
            );
        }
    }
    for (key, &allowed) in baseline {
        let count = counts.get(key).copied().unwrap_or(0);
        if count < allowed {
            improved += allowed - count;
            println!(
                "lint: {key}: {count} hit(s), baseline allows {allowed} — ratchet can tighten"
            );
        }
    }
    if regressed {
        eprintln!(
            "lint: FAILED — new violations above the committed baseline (ci/lint_baseline.json)"
        );
        return ExitCode::FAILURE;
    }
    if improved > 0 {
        println!(
            "lint: ok — {improved} hit(s) below baseline; run `cargo xtask lint --update-baseline` to lock in the improvement"
        );
    } else {
        println!("lint: ok — no violations above baseline");
    }
    ExitCode::SUCCESS
}

/// Scans one file, appending every un-silenced rule hit to `out`.
///
/// Test code (`#[cfg(test)]` modules and anything under a `tests/`
/// directory) is exempt: tests unwrap by design. Allow markers are
/// matched against the *raw* line text (before comment stripping, since
/// the marker lives in a comment) on the hit line or the contiguous
/// comment block above it.
fn scan_file(rel: &Path, source: &str, out: &mut Vec<Violation>) {
    if rel.components().any(|c| c.as_os_str() == "tests") {
        return;
    }
    let raw_lines: Vec<&str> = source.lines().collect();
    let test_mask = cfg_test_mask(&raw_lines);
    for (idx, raw) in raw_lines.iter().enumerate() {
        if test_mask[idx] {
            continue;
        }
        let code = strip_line_comment(raw);
        if code.trim().is_empty() {
            continue;
        }
        for rule in RULES {
            if !(rule.applies)(rel) || !(rule.matches)(&code, rel) {
                continue;
            }
            if has_allow_marker(&raw_lines, idx, rule.name) {
                continue;
            }
            out.push(Violation {
                rule: rule.name,
                path: rel.to_path_buf(),
                line_no: idx + 1,
                line: (*raw).to_string(),
            });
        }
    }
}

/// Whether line `idx` or the contiguous comment block immediately above
/// it carries `xtask:allow(rule)` — so a justification long enough to
/// wrap across comment lines still anchors to the statement below it.
fn has_allow_marker(lines: &[&str], idx: usize, rule: &str) -> bool {
    let marker = format!("xtask:allow({rule})");
    if lines[idx].contains(&marker) {
        return true;
    }
    lines[..idx]
        .iter()
        .rev()
        .take_while(|l| l.trim_start().starts_with("//"))
        .any(|l| l.contains(&marker))
}

/// A per-line mask of `#[cfg(test)]`-gated code, computed by tracking
/// brace depth from each `#[cfg(test)]` attribute to the close of the
/// item it gates. Good enough for this repo's layout (the attribute
/// and its item live in the same file, and braces inside string
/// literals don't straddle the boundary in ways that matter here).
fn cfg_test_mask(lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut depth = 0i64; // brace depth inside the gated item; 0 = outside
    let mut gated = false;
    let mut pending = false; // saw the attribute, waiting for the opening brace
    for (idx, raw) in lines.iter().enumerate() {
        let code = strip_line_comment(raw);
        if !gated && !pending && code.contains("#[cfg(test)]") {
            pending = true;
            mask[idx] = true;
            continue;
        }
        if pending || gated {
            mask[idx] = true;
        }
        for ch in code.chars() {
            match ch {
                '{' => {
                    if pending {
                        pending = false;
                        gated = true;
                    }
                    if gated {
                        depth += 1;
                    }
                }
                '}' if gated => {
                    depth -= 1;
                    if depth == 0 {
                        gated = false;
                    }
                }
                _ => {}
            }
        }
    }
    mask
}

/// Strips a trailing `//` comment, honouring string and char literals
/// so a `"//"` inside a string doesn't truncate the code.
fn strip_line_comment(line: &str) -> String {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut in_char = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str || in_char => i += 1, // skip the escaped byte
            b'"' if !in_char => in_str = !in_str,
            b'\'' if !in_str => {
                // Only toggle for char literals, not lifetimes: a char
                // literal closes within a few bytes.
                if in_char {
                    in_char = false;
                } else if matches!(bytes.get(i + 2), Some(b'\''))
                    || (bytes.get(i + 1) == Some(&b'\\'))
                {
                    in_char = true;
                }
            }
            b'/' if !in_str && !in_char && bytes.get(i + 1) == Some(&b'/') => {
                return line[..i].to_string();
            }
            _ => {}
        }
        i += 1;
    }
    line.to_string()
}

/// Every `.rs` file under `dir`, depth-first, deterministic order.
fn rust_sources(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        let mut entries: Vec<_> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|ext| ext == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// The workspace root: the ancestor of this binary's manifest dir that
/// holds the top-level `Cargo.toml` and the `crates/` tree, falling
/// back to the current dir (where `cargo xtask` runs from anyway).
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .find(|a| a.join("Cargo.toml").is_file() && a.join("crates").is_dir())
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf)
}

/// Writes the baseline as a flat, sorted, diff-friendly JSON object.
fn serialize_baseline(counts: &BTreeMap<String, usize>) -> String {
    let mut out = String::from("{\n");
    for (i, (key, count)) in counts.iter().enumerate() {
        let comma = if i + 1 == counts.len() { "" } else { "," };
        let _ = writeln!(out, "  \"{key}\": {count}{comma}");
    }
    out.push_str("}\n");
    out
}

/// Parses the flat `{"rule:path": count}` baseline. A hand-rolled
/// parser keeps xtask dependency-free; the format is exactly what
/// [`serialize_baseline`] emits (keys themselves contain colons, so
/// each entry splits on its *last* colon).
fn parse_baseline(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let body = text.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or("expected a top-level JSON object")?;
    let mut map = BTreeMap::new();
    for entry in body.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (key, value) = entry
            .rsplit_once(':')
            .ok_or_else(|| format!("malformed entry `{entry}`"))?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("unquoted key in `{entry}`"))?;
        let count: usize = value
            .trim()
            .parse()
            .map_err(|_| format!("non-numeric count in `{entry}`"))?;
        map.insert(key.to_string(), count);
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(rel: &str, source: &str) -> Vec<String> {
        let mut out = Vec::new();
        scan_file(Path::new(rel), source, &mut out);
        out.iter()
            .map(|v| format!("{}:{}", v.rule, v.line_no))
            .collect()
    }

    #[test]
    fn engine_unwrap_fires_only_in_engine_src() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(
            scan("crates/engine/src/stream.rs", src),
            ["engine-unwrap:1"]
        );
        assert!(scan("crates/core/src/runtime.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\nfn h() { y.unwrap(); }\n";
        assert_eq!(scan("crates/engine/src/a.rs", src), ["engine-unwrap:6"]);
    }

    #[test]
    fn allow_marker_on_same_or_preceding_line_silences() {
        let same = "thread::sleep(d); // xtask:allow(thread-sleep): pacing\n";
        assert!(scan("crates/engine/src/a.rs", same).is_empty());
        let above = "// xtask:allow(thread-sleep): pacing\nthread::sleep(d);\n";
        assert!(scan("crates/engine/src/a.rs", above).is_empty());
        let wrapped =
            "// xtask:allow(thread-sleep): a justification\n// that wraps\nthread::sleep(d);\n";
        assert!(scan("crates/engine/src/a.rs", wrapped).is_empty());
        let non_contiguous = "// xtask:allow(thread-sleep): stale\nlet x = 1;\nthread::sleep(d);\n";
        assert_eq!(
            scan("crates/engine/src/a.rs", non_contiguous),
            ["thread-sleep:3"]
        );
        let wrong_rule = "// xtask:allow(raw-instant): pacing\nthread::sleep(d);\n";
        assert_eq!(
            scan("crates/engine/src/a.rs", wrong_rule),
            ["thread-sleep:2"]
        );
    }

    #[test]
    fn comments_and_strings_do_not_trip_rules() {
        let comment = "// calls thread::sleep eventually\n";
        assert!(scan("crates/engine/src/a.rs", comment).is_empty());
        let slashes_in_string = "let url = \"http://x\"; y.unwrap();\n";
        assert_eq!(
            scan("crates/engine/src/a.rs", slashes_in_string),
            ["engine-unwrap:1"]
        );
    }

    #[test]
    fn clock_seam_is_exempt_from_raw_instant() {
        let src = "let t = Instant::now();\n";
        assert!(scan("crates/engine/src/clock.rs", src).is_empty());
        assert_eq!(scan("crates/engine/src/stream.rs", src), ["raw-instant:1"]);
    }

    #[test]
    fn tests_directories_are_exempt() {
        let src = "fn f() { thread::sleep(d); x.unwrap(); }\n";
        assert!(scan("crates/engine/tests/it.rs", src).is_empty());
    }

    #[test]
    fn baseline_roundtrips() {
        let mut counts = BTreeMap::new();
        counts.insert("engine-unwrap:crates/engine/src/a.rs".to_string(), 3);
        counts.insert("thread-sleep:crates/core/src/b.rs".to_string(), 1);
        let text = serialize_baseline(&counts);
        assert_eq!(parse_baseline(&text).unwrap(), counts);
        assert_eq!(parse_baseline("{}").unwrap(), BTreeMap::new());
    }
}
