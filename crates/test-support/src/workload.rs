//! The seeded workload generator: reproducible traces of offered load,
//! link bandwidth and tenant churn for the scenario suite.
//!
//! A [`WorkloadGen`] is a pure description — seed plus shape knobs —
//! and [`WorkloadGen::generate`] is a pure function of it: the same
//! generator yields a bit-identical [`WorkloadTrace`] every time, on
//! every host (the determinism property the suite's proptests pin).
//! Traces model the regimes the partition literature identifies as
//! decision-flipping:
//!
//! - **diurnal load curves** — a sinusoid over the trace length
//!   modulating offered frames per step;
//! - **flash crowds** — seeded step windows where offered load
//!   multiplies abruptly;
//! - **bandwidth traces** — per-step link rates (jittered around a
//!   baseline, with an optional mid-trace collapse window), replayed
//!   live through `StreamPipeline::set_link_shaping` /
//!   [`StreamOptions::shape_links`](d3_engine::stream::StreamOptions)
//!   and convertible to scripted [`Observation::Network`] sequences;
//! - **tenant churn** — seeded arrival/departure marks driving
//!   `attach_session` / `detach_session` against the shared pipeline.

use crate::ScriptedObservations;
use d3_engine::stream::LinkShaping;

/// One step of a generated workload trace: what the scenario runner
/// applies before admitting that step's frames.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStep {
    /// Frames offered this step (spread round-robin over the tenants
    /// active at the time).
    pub frames: u32,
    /// Device→edge link rate in effect, Mbit/s.
    pub device_edge_mbps: f64,
    /// Edge→cloud link rate in effect, Mbit/s.
    pub edge_cloud_mbps: f64,
    /// Fair-share weights of tenants arriving at this step.
    pub arrivals: Vec<f64>,
    /// Tenants departing at this step (oldest-first, never the root).
    pub departures: u32,
}

impl TraceStep {
    /// The step's link rates as engine [`LinkShaping`].
    #[must_use]
    pub fn shaping(&self) -> LinkShaping {
        LinkShaping::links(self.device_edge_mbps, self.edge_cloud_mbps)
    }
}

/// A reproducible workload trace (see [`WorkloadGen`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkloadTrace {
    /// The per-step schedule, in replay order.
    pub steps: Vec<TraceStep>,
}

impl WorkloadTrace {
    /// Total frames the trace offers.
    #[must_use]
    pub fn total_frames(&self) -> u64 {
        self.steps.iter().map(|s| u64::from(s.frames)).sum()
    }

    /// Peak frames any single step offers.
    #[must_use]
    pub fn peak_frames(&self) -> u32 {
        self.steps.iter().map(|s| s.frames).max().unwrap_or(0)
    }

    /// The edge→cloud bandwidth series, one value per step.
    #[must_use]
    pub fn edge_cloud_series(&self) -> Vec<f64> {
        self.steps.iter().map(|s| s.edge_cloud_mbps).collect()
    }

    /// The trace's bandwidth series as a scripted
    /// [`Observation::Network`](d3_core::Observation) trace — the same
    /// currency injected drifts and the live bandwidth prober speak, so
    /// a controller can be driven by a generated trace exactly like a
    /// hand-written one.
    #[must_use]
    pub fn scripted_bandwidth(&self) -> ScriptedObservations {
        ScriptedObservations::bandwidth_trace(&self.edge_cloud_series())
    }

    /// Total tenant arrivals across the trace.
    #[must_use]
    pub fn total_arrivals(&self) -> usize {
        self.steps.iter().map(|s| s.arrivals.len()).sum()
    }
}

/// `xorshift64*` over a splitmix-scrambled seed: the same tiny
/// generator family the zoo's `random_dag` uses, so the trace generator
/// adds no RNG dependency and stays bit-stable forever.
#[derive(Debug, Clone)]
struct TraceRng(u64);

impl TraceRng {
    fn new(seed: u64) -> Self {
        // splitmix64 scramble so seed 0 and small seeds diverge.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self((z ^ (z >> 31)) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `0..n` (`n > 0`).
    fn next_index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// The seeded workload generator: a trace description whose
/// [`generate`](Self::generate) is a pure function — same generator,
/// bit-identical trace.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadGen {
    seed: u64,
    steps: usize,
    base_frames: f64,
    diurnal_amplitude: f64,
    flash_crowds: usize,
    flash_multiplier: f64,
    base_device_edge_mbps: f64,
    base_edge_cloud_mbps: f64,
    bandwidth_jitter: f64,
    collapse: Option<(usize, usize, f64)>,
    arrival_prob: f64,
    departure_prob: f64,
}

impl WorkloadGen {
    /// A generator with a steady default shape: 12 steps of 8 frames,
    /// unshaped (infinite-rate) links, no crowds, no churn. Layer the
    /// regime knobs on with the builder methods.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            steps: 12,
            base_frames: 8.0,
            diurnal_amplitude: 0.0,
            flash_crowds: 0,
            flash_multiplier: 3.0,
            base_device_edge_mbps: f64::INFINITY,
            base_edge_cloud_mbps: f64::INFINITY,
            bandwidth_jitter: 0.0,
            collapse: None,
            arrival_prob: 0.0,
            departure_prob: 0.0,
        }
    }

    /// Trace length in steps.
    #[must_use]
    pub fn steps(mut self, steps: usize) -> Self {
        self.steps = steps;
        self
    }

    /// Baseline offered load per step, with a full-trace diurnal
    /// sinusoid of relative amplitude `diurnal` (0 = flat, 0.5 = load
    /// swings ±50% over the trace).
    #[must_use]
    pub fn load(mut self, base_frames: f64, diurnal: f64) -> Self {
        self.base_frames = base_frames;
        self.diurnal_amplitude = diurnal;
        self
    }

    /// Injects `count` flash crowds: seeded single-step windows whose
    /// offered load multiplies by `multiplier`.
    #[must_use]
    pub fn flash_crowds(mut self, count: usize, multiplier: f64) -> Self {
        self.flash_crowds = count;
        self.flash_multiplier = multiplier;
        self
    }

    /// Shapes the links around baselines `device_edge` / `edge_cloud`
    /// Mbit/s with relative per-step jitter (0 = constant rates).
    #[must_use]
    pub fn bandwidth(mut self, device_edge: f64, edge_cloud: f64, jitter: f64) -> Self {
        self.base_device_edge_mbps = device_edge;
        self.base_edge_cloud_mbps = edge_cloud;
        self.bandwidth_jitter = jitter;
        self
    }

    /// Collapses the edge→cloud link to `depth` × baseline for the
    /// steps `[start, start + len)` — the bandwidth-drop regime that
    /// flips partition decisions.
    #[must_use]
    pub fn collapse(mut self, start: usize, len: usize, depth: f64) -> Self {
        self.collapse = Some((start, len, depth));
        self
    }

    /// Tenant churn: per-step arrival and departure probabilities.
    /// Arrivals carry a seeded weight in `[0.5, 2.0)`; departures
    /// retire the oldest non-root tenant.
    #[must_use]
    pub fn churn(mut self, arrival_prob: f64, departure_prob: f64) -> Self {
        self.arrival_prob = arrival_prob;
        self.departure_prob = departure_prob;
        self
    }

    /// Generates the trace — a pure function of `self`, bit-identical
    /// on every call.
    #[must_use]
    pub fn generate(&self) -> WorkloadTrace {
        let mut rng = TraceRng::new(self.seed);
        // Flash-crowd steps are drawn first so load and bandwidth
        // streams can't shift them when knobs change independently.
        let mut crowd_steps = Vec::new();
        if self.steps > 0 {
            for _ in 0..self.flash_crowds {
                crowd_steps.push(rng.next_index(self.steps));
            }
        }
        let mut live_tenants = 0usize; // non-root tenants currently up
        let steps = (0..self.steps)
            .map(|k| {
                let phase = k as f64 / self.steps.max(1) as f64;
                let diurnal = 1.0 + self.diurnal_amplitude * (phase * std::f64::consts::TAU).sin();
                let crowd = if crowd_steps.contains(&k) {
                    self.flash_multiplier
                } else {
                    1.0
                };
                let frames = (self.base_frames * diurnal * crowd).round().max(0.0) as u32;
                let jitter = |rng: &mut TraceRng, base: f64| {
                    if base.is_finite() && self.bandwidth_jitter > 0.0 {
                        base * (1.0 + self.bandwidth_jitter * (2.0 * rng.next_f64() - 1.0))
                    } else {
                        base
                    }
                };
                let device_edge_mbps = jitter(&mut rng, self.base_device_edge_mbps);
                let mut edge_cloud_mbps = jitter(&mut rng, self.base_edge_cloud_mbps);
                if let Some((start, len, depth)) = self.collapse {
                    if (start..start.saturating_add(len)).contains(&k)
                        && edge_cloud_mbps.is_finite()
                    {
                        edge_cloud_mbps *= depth;
                    }
                }
                let arrivals = if rng.next_f64() < self.arrival_prob {
                    live_tenants += 1;
                    vec![0.5 + 1.5 * rng.next_f64()]
                } else {
                    Vec::new()
                };
                let departures = if live_tenants > 0 && rng.next_f64() < self.departure_prob {
                    live_tenants -= 1;
                    1
                } else {
                    0
                };
                TraceStep {
                    frames,
                    device_edge_mbps,
                    edge_cloud_mbps,
                    arrivals,
                    departures,
                }
            })
            .collect();
        WorkloadTrace { steps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_is_bit_identical() {
        let make = || {
            WorkloadGen::new(42)
                .steps(24)
                .load(10.0, 0.4)
                .flash_crowds(2, 4.0)
                .bandwidth(40.0, 12.0, 0.2)
                .collapse(8, 4, 0.1)
                .churn(0.3, 0.2)
                .generate()
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorkloadGen::new(1).steps(16).bandwidth(40.0, 12.0, 0.3);
        let b = WorkloadGen::new(2).steps(16).bandwidth(40.0, 12.0, 0.3);
        assert_ne!(a.generate(), b.generate());
    }

    #[test]
    fn diurnal_swings_and_flash_crowds_raise_peak() {
        let flat = WorkloadGen::new(7).steps(20).load(10.0, 0.0).generate();
        assert!(flat.steps.iter().all(|s| s.frames == 10));
        let crowd = WorkloadGen::new(7)
            .steps(20)
            .load(10.0, 0.0)
            .flash_crowds(1, 5.0)
            .generate();
        assert_eq!(crowd.peak_frames(), 50);
        assert!(crowd.total_frames() > flat.total_frames());
    }

    #[test]
    fn collapse_window_drops_backbone_only() {
        let t = WorkloadGen::new(3)
            .steps(10)
            .bandwidth(40.0, 20.0, 0.0)
            .collapse(4, 3, 0.1)
            .generate();
        for (k, s) in t.steps.iter().enumerate() {
            assert!((s.device_edge_mbps - 40.0).abs() < 1e-12);
            let want = if (4..7).contains(&k) { 2.0 } else { 20.0 };
            assert!((s.edge_cloud_mbps - want).abs() < 1e-12, "step {k}");
        }
    }

    #[test]
    fn departures_never_exceed_arrivals() {
        let t = WorkloadGen::new(9).steps(50).churn(0.4, 0.4).generate();
        let mut live = 0i64;
        for s in &t.steps {
            live += s.arrivals.len() as i64;
            live -= i64::from(s.departures);
            assert!(live >= 0, "departure without a live tenant");
        }
        assert!(t.total_arrivals() > 0, "churn at p=0.4 over 50 steps");
    }

    #[test]
    fn unshaped_links_stay_infinite() {
        let t = WorkloadGen::new(5).steps(4).generate();
        assert!(t
            .steps
            .iter()
            .all(|s| s.shaping() == LinkShaping::unshaped()));
    }
}
