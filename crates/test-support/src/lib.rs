//! # d3-test-support
//!
//! The workspace's deterministic test kit: the seeded graph/workload
//! builders, streaming harnesses, scripted observation traces and fake
//! clock that the integration tests, benches and the CI perf gate
//! previously hand-rolled in near-identical copies. Everything here is
//! seeded and wall-clock-free (except where a harness deliberately
//! measures), so tests replay bit-identically.
//!
//! This crate is a **dev-dependency** of the workspace's test targets
//! and a regular dependency of the bench harness (whose perf-gate
//! binary shares the burst protocol with the pooling bench).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scenario;
pub mod workload;

pub use scenario::{run_scenario, scenario_graph, Envelope, Scenario, ScenarioOutcome};
pub use workload::{TraceStep, WorkloadGen, WorkloadTrace};

use d3_core::{D3Runtime, ModelOptions, Observation, TelemetryTap};
use d3_engine::stream::{StreamOptions, StreamPipeline};
use d3_engine::{Deployment, StreamStats};
use d3_model::{zoo, DnnGraph, Executor};
use d3_partition::{EvenSplit, Partitioner, Problem};
use d3_simnet::{LinkRates, NetworkCondition, TierProfiles};
use d3_tensor::Tensor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The weight seed the adaptation/fleet integration tests share.
pub const SEED: u64 = 11;

/// The weight seed every streaming *measurement* (benches, perf gate)
/// shares.
pub const STREAM_SEED: u64 = 7;

/// The canonical forced-three-tier test model: a six-layer conv chain
/// whose even split loads every pipeline stage with real work.
#[must_use]
pub fn chain_graph() -> DnnGraph {
    zoo::chain_cnn(6, 8, 16)
}

/// A runtime serving `graph` under the cost-oblivious even three-way
/// split ([`EvenSplit`], no VSM), so every pipeline stage does real
/// work — the setup the streaming and adaptation tests all start from.
///
/// # Panics
///
/// Panics when the graph cannot be deployed (even splits always can).
#[must_use]
pub fn even_split_runtime(name: &str, graph: DnnGraph, seed: u64) -> D3Runtime {
    even_split_runtime_with(name, graph, seed, false)
}

/// [`even_split_runtime`] with VSM edge tiling switchable on (the
/// default VSM config) — the knob the plan-swap losslessness tests
/// toggle.
///
/// # Panics
///
/// Panics when the graph cannot be deployed (even splits always can).
#[must_use]
pub fn even_split_runtime_with(name: &str, graph: DnnGraph, seed: u64, vsm: bool) -> D3Runtime {
    let mut options = ModelOptions::new().partitioner(EvenSplit).seed(seed);
    if !vsm {
        options = options.without_vsm();
    }
    let mut rt = D3Runtime::new();
    rt.register(name, graph, options)
        .expect("even split deploys on any graph");
    rt
}

/// Deploys `g` on the cost-oblivious even three-way split (every stage
/// does real work) under the paper testbed's Wi-Fi condition.
///
/// # Panics
///
/// Panics when the graph cannot be partitioned (even splits always can).
#[must_use]
pub fn even_split_deployment(g: &Arc<DnnGraph>) -> Deployment {
    let p = Problem::new(
        g.clone(),
        &TierProfiles::paper_testbed(),
        NetworkCondition::WiFi,
    );
    let assignment = EvenSplit.partition(&p).unwrap();
    Deployment::new(&p, assignment, None)
}

/// A deterministic burst of random frames shaped `(c, h, w)`, seeded
/// `base_seed + k` for frame `k`.
#[must_use]
pub fn frame_burst(n: usize, (c, h, w): (usize, usize, usize), base_seed: u64) -> Vec<Tensor> {
    (0..n as u64)
        .map(|k| Tensor::random(c, h, w, base_seed + k))
        .collect()
}

/// Single-node reference outputs for `frames` under `graph`'s weights —
/// the bit-identical baseline every losslessness assertion compares
/// streamed results against.
#[must_use]
pub fn reference_outputs(graph: &DnnGraph, seed: u64, frames: &[Tensor]) -> Vec<Tensor> {
    let exec = Executor::new(graph, seed);
    frames.iter().map(|f| exec.run(f)).collect()
}

/// Streams `frames` frames end to end (submit until backpressure, drain
/// one, retry) and returns the closing report's measured statistics —
/// the burst protocol the pooling bench and the CI perf gate share.
///
/// # Panics
///
/// Panics when the pipeline cannot be built or a worker dies.
#[must_use]
pub fn stream_burst(
    g: &Arc<DnnGraph>,
    d: &Deployment,
    options: StreamOptions,
    frames: usize,
) -> StreamStats {
    let pipeline = StreamPipeline::new(g.clone(), STREAM_SEED, d, None, options).unwrap();
    let shape = g.input_shape();
    let input = Tensor::random(shape.c, shape.h, shape.w, 1);
    let mut received = 0usize;
    for _ in 0..frames {
        while pipeline.submit(&input).is_err() {
            let _ = std::hint::black_box(pipeline.recv().unwrap());
            received += 1;
        }
    }
    while received < frames {
        let _ = std::hint::black_box(pipeline.recv().unwrap());
        received += 1;
    }
    pipeline.close().measured
}

/// Drains a telemetry tap and returns the link rates of every
/// [`Observation::Network`] it held, oldest first — the flattener
/// bandwidth-prober tests use to compare published estimates against a
/// shaped link.
#[must_use]
pub fn network_rates(tap: &TelemetryTap) -> Vec<LinkRates> {
    tap.drain()
        .iter()
        .flat_map(|s| &s.observations)
        .filter_map(|o| match o {
            Observation::Network { net } => Some(net.rates()),
            _ => None,
        })
        .collect()
}

/// A deterministic observation-trace player: a scripted sequence of
/// per-step observation batches (e.g. a link-degradation drift trace)
/// that tests replay against controllers, sessions, or whole fleets.
#[derive(Debug, Clone)]
pub struct ScriptedObservations {
    steps: Vec<Vec<Observation>>,
    cursor: usize,
}

impl ScriptedObservations {
    /// A player over explicit per-step batches.
    #[must_use]
    pub fn new(steps: Vec<Vec<Observation>>) -> Self {
        Self { steps, cursor: 0 }
    }

    /// One [`Observation::Network`] step per backbone bandwidth value
    /// (the Fig. 11-style sweep shape).
    #[must_use]
    pub fn bandwidth_trace(mbps: &[f64]) -> Self {
        Self::new(
            mbps.iter()
                .map(|&m| {
                    vec![Observation::Network {
                        net: NetworkCondition::custom_backbone(m),
                    }]
                })
                .collect(),
        )
    }

    /// A link-degradation trace: the backbone ramps linearly from
    /// `from_mbps` to `to_mbps` over `ramp` steps, then holds the final
    /// value for `hold` more steps — the convergence-probing shape of
    /// the multi-tenant tests.
    ///
    /// # Panics
    ///
    /// Panics when `ramp` is zero.
    #[must_use]
    pub fn degradation(from_mbps: f64, to_mbps: f64, ramp: usize, hold: usize) -> Self {
        assert!(ramp > 0, "a degradation needs at least one ramp step");
        let mut values: Vec<f64> = (0..ramp)
            .map(|k| from_mbps + (to_mbps - from_mbps) * (k as f64 + 1.0) / ramp as f64)
            .collect();
        values.extend(std::iter::repeat_n(to_mbps, hold));
        Self::bandwidth_trace(&values)
    }

    /// Steps remaining.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.steps.len().saturating_sub(self.cursor)
    }

    /// Total steps in the script.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the script is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Plays the next step's batch, advancing the cursor.
    pub fn next_step(&mut self) -> Option<&[Observation]> {
        let step = self.steps.get(self.cursor)?;
        self.cursor += 1;
        Some(step)
    }

    /// Replays the whole remaining script into `sink`, advancing a
    /// [`FakeClock`] by `step` per batch — so observation timestamps
    /// (where a consumer derives any) are deterministic.
    pub fn play(
        &mut self,
        clock: &FakeClock,
        step: Duration,
        mut sink: impl FnMut(usize, &Observation),
    ) {
        let mut index = self.cursor;
        while let Some(batch) = self.next_step() {
            for obs in batch {
                sink(index, obs);
            }
            clock.advance(step);
            index += 1;
        }
    }
}

impl Iterator for ScriptedObservations {
    type Item = Vec<Observation>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_step().map(<[Observation]>::to_vec)
    }
}

/// A deterministic, thread-safe test clock: time only moves when a test
/// calls [`advance`](Self::advance), so timing-derived assertions replay
/// exactly. Clones share the same instant.
#[derive(Debug, Clone, Default)]
pub struct FakeClock(Arc<AtomicU64>);

impl FakeClock {
    /// A clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The current fake time since the clock's epoch.
    #[must_use]
    pub fn now(&self) -> Duration {
        Duration::from_nanos(self.0.load(Ordering::SeqCst))
    }

    /// Moves time forward by `delta`.
    pub fn advance(&self, delta: Duration) {
        self.0.fetch_add(delta.as_nanos() as u64, Ordering::SeqCst);
    }

    /// An engine [`d3_engine::Clock`] driven by this fake clock: the
    /// engine's stamps move exactly when the test calls
    /// [`advance`](Self::advance), sharing this clock's timeline.
    #[must_use]
    pub fn engine_clock(&self) -> d3_engine::Clock {
        d3_engine::Clock::manual(Arc::clone(&self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_bursts_are_deterministic() {
        let a = frame_burst(3, (3, 8, 8), 100);
        let b = frame_burst(3, (3, 8, 8), 100);
        assert_eq!(a, b);
        assert_ne!(a[0], a[1], "distinct seeds per frame");
    }

    #[test]
    fn reference_outputs_match_streamed_serving() {
        let rt = even_split_runtime("m", chain_graph(), SEED);
        let frames = frame_burst(2, (3, 16, 16), 50);
        let expect = reference_outputs(&chain_graph(), SEED, &frames);
        for (frame, expect) in frames.iter().zip(&expect) {
            let got = rt.serve("m", frame).unwrap();
            assert_eq!(d3_tensor::max_abs_diff(&got, expect), Some(0.0));
        }
    }

    #[test]
    fn degradation_ramps_then_holds() {
        let mut trace = ScriptedObservations::degradation(30.0, 3.0, 3, 2);
        assert_eq!(trace.len(), 5);
        let values: Vec<f64> = trace
            .by_ref()
            .flatten()
            .map(|obs| match obs {
                Observation::Network { net } => net.rates().edge_cloud_mbps,
                _ => unreachable!("degradations are network traces"),
            })
            .collect();
        assert!((values[0] - 21.0).abs() < 1e-9);
        assert!((values[2] - 3.0).abs() < 1e-9);
        assert_eq!(values[3], values[4]);
        assert_eq!(trace.remaining(), 0);
    }

    #[test]
    fn fake_clock_advances_deterministically_across_clones() {
        let clock = FakeClock::new();
        let shared = clock.clone();
        let mut trace = ScriptedObservations::bandwidth_trace(&[10.0, 20.0]);
        let mut seen = 0;
        trace.play(&clock, Duration::from_millis(5), |_, _| seen += 1);
        assert_eq!(seen, 2);
        assert_eq!(shared.now(), Duration::from_millis(10));
    }
}
