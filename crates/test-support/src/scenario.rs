//! The scenario layer: a [`Scenario`] binds a generated workload trace
//! ([`WorkloadGen`]) to a zoo model, stream options and a pass/fail
//! [`Envelope`]; [`run_scenario`] replays the trace against a live
//! shared [`StreamPipeline`] — bandwidth steps through
//! `set_link_shaping`, tenant churn through `attach_session` /
//! `detach_session`, load through weighted-fair admission — and
//! reports a structured [`ScenarioOutcome`] the perf gate records into
//! `BENCH_streaming.json`.
//!
//! The envelope checks the claims the system makes: **losslessness**
//! (`drops == 0` — every admitted frame is delivered), a **per-tenant
//! p95** latency bound (the worst p95 across every session that lived,
//! including departed tenants), a **reconfiguration budget**, and an
//! optional **device energy budget** priced through
//! [`d3_partition::energy`] (per-inference device joules of the
//! deployed assignment × delivered frames must fit the battery).

use crate::workload::WorkloadGen;
use crate::{even_split_deployment, STREAM_SEED};
use d3_engine::stream::{StreamOptions, StreamPipeline};
use d3_engine::SessionId;
use d3_model::{zoo, DnnGraph};
use d3_partition::energy::energy;
use d3_partition::Problem;
use d3_simnet::{NetworkCondition, TierProfiles};
use d3_tensor::Tensor;
use std::collections::VecDeque;
use std::sync::Arc;

/// The pass/fail envelope a scenario is judged against.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Frames the run may lose (the suite pins 0: the pipeline is
    /// lossless per session).
    pub max_drops: u64,
    /// Upper bound on the worst per-tenant p95 delivery latency,
    /// seconds.
    pub max_p95_s: f64,
    /// Upper bound on live reconfigurations over the run.
    pub max_reconfigs: u64,
    /// Optional device battery budget, joules: the deployed plan's
    /// per-inference device energy × delivered frames must fit.
    pub device_budget_j: Option<f64>,
}

impl Default for Envelope {
    fn default() -> Self {
        Self {
            max_drops: 0,
            max_p95_s: f64::INFINITY,
            max_reconfigs: 0,
            device_budget_j: None,
        }
    }
}

impl Envelope {
    /// A lossless envelope with a p95 bound and no other limits.
    #[must_use]
    pub fn p95(max_p95_s: f64) -> Self {
        Self {
            max_p95_s,
            ..Self::default()
        }
    }

    /// Sets the reconfiguration budget.
    #[must_use]
    pub fn reconfigs(mut self, max: u64) -> Self {
        self.max_reconfigs = max;
        self
    }

    /// Sets the device battery budget, joules.
    #[must_use]
    pub fn battery(mut self, joules: f64) -> Self {
        self.device_budget_j = Some(joules);
        self
    }
}

/// One scenario of the matrix: a named binding of trace, model, stream
/// options and envelope.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Matrix row name (also the perf-gate record key).
    pub name: String,
    /// Zoo model spec (see [`zoo::by_spec`]), e.g. `"chain_cnn:6:8:16"`
    /// or `"transformer:12:48:2:64"`.
    pub model: String,
    /// Weight seed (and the trace seed's default base).
    pub seed: u64,
    /// The workload trace description.
    pub workload: WorkloadGen,
    /// Stream options the pipeline is built with.
    pub options: StreamOptions,
    /// The pass/fail envelope.
    pub envelope: Envelope,
}

impl Scenario {
    /// A scenario over `model` with default stream options, the given
    /// workload, and envelope.
    #[must_use]
    pub fn new(name: &str, model: &str, workload: WorkloadGen, envelope: Envelope) -> Self {
        Self {
            name: name.to_string(),
            model: model.to_string(),
            seed: STREAM_SEED,
            workload,
            options: StreamOptions::default(),
            envelope,
        }
    }

    /// Replaces the stream options.
    #[must_use]
    pub fn options(mut self, options: StreamOptions) -> Self {
        self.options = options;
        self
    }
}

/// What a scenario run measured, judged against its envelope.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The scenario's name.
    pub name: String,
    /// Frames admitted across every tenant.
    pub submitted: u64,
    /// Frames delivered across every tenant.
    pub delivered: u64,
    /// Frames lost (admitted but never delivered).
    pub drops: u64,
    /// Worst per-tenant p95 delivery latency, seconds (over every
    /// session that lived, departed tenants included).
    pub worst_p95_s: f64,
    /// Aggregate measured throughput, frames per second.
    pub throughput_fps: f64,
    /// Live reconfigurations over the run.
    pub reconfigs: u64,
    /// Most tenants simultaneously attached.
    pub peak_tenants: usize,
    /// Device energy the run spent, joules (per-inference device joules
    /// of the deployed plan × delivered frames).
    pub device_j: f64,
    /// Every envelope violation, human-readable; empty = passed.
    pub violations: Vec<String>,
}

impl ScenarioOutcome {
    /// Whether the run stayed inside its envelope.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Builds the scenario's graph from its zoo spec.
///
/// # Panics
///
/// Panics on an unknown model spec — a scenario table typo should fail
/// loudly, not skip silently.
#[must_use]
pub fn scenario_graph(sc: &Scenario) -> Arc<DnnGraph> {
    Arc::new(
        zoo::by_spec(&sc.model)
            .unwrap_or_else(|| panic!("scenario {}: unknown model spec {}", sc.name, sc.model)),
    )
}

/// Replays `sc`'s generated trace against a live shared pipeline and
/// judges the outcome against the envelope.
///
/// Per step: the step's link rates apply through
/// `StreamPipeline::set_link_shaping` (live, no quiesce), arrivals
/// attach weighted sessions, departures drain and detach the oldest
/// non-root tenant, and the step's frames are admitted round-robin over
/// the active tenants (draining completions on backpressure, so offered
/// load can exceed capacity without losing frames). Every admitted
/// frame is received before the step ends, keeping the run lossless by
/// construction unless the pipeline itself drops.
///
/// # Panics
///
/// Panics when the pipeline cannot be built or a stage worker dies —
/// scenario runs are CI gates, and a broken pipeline must fail the run.
#[must_use]
pub fn run_scenario(sc: &Scenario) -> ScenarioOutcome {
    let graph = scenario_graph(sc);
    let deployment = even_split_deployment(&graph);
    let profiles = TierProfiles::paper_testbed();
    let problem = Problem::new(graph.clone(), &profiles, NetworkCondition::WiFi);
    let device_j_per_frame = energy(&problem, &deployment.assignment, &profiles).device_j();

    let pipeline = StreamPipeline::new(
        graph.clone(),
        sc.seed,
        &deployment,
        None,
        sc.options.clone(),
    )
    .unwrap_or_else(|e| panic!("scenario {}: pipeline build failed: {e:?}", sc.name));
    let shape = graph.input_shape();
    let input = Tensor::random(shape.c, shape.h, shape.w, 1);

    let trace = sc.workload.generate();
    let mut tenants: VecDeque<SessionId> = VecDeque::from([pipeline.root_session()]);
    let mut peak_tenants = 1usize;
    let mut departed_p95 = 0.0f64;
    // Departed tenants leave the closing report's session list, so
    // their delivered frames are tallied at detach time.
    let mut departed_frames = 0u64;
    let drain = |sid: SessionId| {
        while pipeline.pending_as(sid) > 0 {
            pipeline
                .recv_as(sid)
                .unwrap_or_else(|e| panic!("scenario {}: recv failed: {e:?}", sc.name));
        }
    };
    for step in &trace.steps {
        pipeline.set_link_shaping(step.shaping());
        for &weight in &step.arrivals {
            tenants.push_back(pipeline.attach_session(weight));
            peak_tenants = peak_tenants.max(tenants.len());
        }
        for _ in 0..step.departures {
            // Retire the oldest non-root tenant, drained first so the
            // departure is lossless.
            if tenants.len() > 1 {
                let sid = tenants.remove(1).unwrap_or_else(|| unreachable!());
                drain(sid);
                if let Some(stats) = pipeline.detach_session(sid) {
                    departed_p95 = departed_p95.max(stats.p95_latency_s);
                    departed_frames += stats.frames;
                }
            }
        }
        for k in 0..step.frames as usize {
            let sid = tenants[k % tenants.len()];
            // Weighted-fair admission can refuse (quota or full queue):
            // blocking submit routes completions while it waits, so
            // offered load above capacity backpressures without loss.
            pipeline
                .submit_blocking_as(sid, &input)
                .unwrap_or_else(|e| panic!("scenario {}: submit failed: {e:?}", sc.name));
        }
        for &sid in &tenants {
            drain(sid);
        }
    }
    let report = pipeline.close();

    let worst_p95_s = report
        .sessions
        .iter()
        .map(|s| s.p95_latency_s)
        .fold(departed_p95, f64::max);
    let delivered: u64 = departed_frames + report.sessions.iter().map(|s| s.frames).sum::<u64>();
    let drops = report.submitted.saturating_sub(delivered);
    let device_j = device_j_per_frame * delivered as f64;

    let mut violations = Vec::new();
    if drops > sc.envelope.max_drops {
        violations.push(format!(
            "drops {} > {} allowed",
            drops, sc.envelope.max_drops
        ));
    }
    if worst_p95_s > sc.envelope.max_p95_s {
        violations.push(format!(
            "worst per-tenant p95 {:.4}s > {:.4}s allowed",
            worst_p95_s, sc.envelope.max_p95_s
        ));
    }
    if report.reconfigurations > sc.envelope.max_reconfigs {
        violations.push(format!(
            "{} reconfigurations > {} allowed",
            report.reconfigurations, sc.envelope.max_reconfigs
        ));
    }
    if let Some(budget) = sc.envelope.device_budget_j {
        if device_j > budget {
            violations.push(format!(
                "device energy {device_j:.3}J > battery budget {budget:.3}J"
            ));
        }
    }

    ScenarioOutcome {
        name: sc.name.clone(),
        submitted: report.submitted,
        delivered,
        drops,
        worst_p95_s,
        throughput_fps: report.measured.throughput_fps,
        reconfigs: report.reconfigurations,
        peak_tenants,
        device_j,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_scenario_passes_its_envelope() {
        let sc = Scenario::new(
            "steady",
            "tiny_cnn:8",
            WorkloadGen::new(1).steps(3).load(4.0, 0.0),
            Envelope::p95(30.0),
        );
        let out = run_scenario(&sc);
        assert!(out.passed(), "violations: {:?}", out.violations);
        assert_eq!(out.submitted, 12);
        assert_eq!(out.delivered, 12);
        assert_eq!(out.drops, 0);
        assert!(out.worst_p95_s > 0.0);
    }

    #[test]
    fn impossible_envelope_reports_violations() {
        let sc = Scenario::new(
            "too-strict",
            "tiny_cnn:8",
            WorkloadGen::new(1).steps(2).load(4.0, 0.0),
            Envelope::p95(0.0),
        );
        let out = run_scenario(&sc);
        assert!(!out.passed());
        assert!(out.violations.iter().any(|v| v.contains("p95")));
    }

    #[test]
    fn churn_attaches_and_departs_tenants_losslessly() {
        let sc = Scenario::new(
            "churn",
            "tiny_cnn:8",
            WorkloadGen::new(5).steps(8).load(3.0, 0.0).churn(0.5, 0.3),
            Envelope::p95(30.0),
        );
        let out = run_scenario(&sc);
        assert!(out.passed(), "violations: {:?}", out.violations);
        assert!(out.peak_tenants > 1, "churn at p=0.5 attaches tenants");
        assert_eq!(out.drops, 0);
    }

    #[test]
    fn battery_budget_gates_energy() {
        let gen = WorkloadGen::new(2).steps(2).load(3.0, 0.0);
        let pass = run_scenario(&Scenario::new(
            "battery-ok",
            "tiny_cnn:8",
            gen.clone(),
            Envelope::p95(30.0).battery(f64::INFINITY),
        ));
        assert!(pass.passed());
        assert!(pass.device_j > 0.0, "device stage spends joules");
        let fail = run_scenario(&Scenario::new(
            "battery-flat",
            "tiny_cnn:8",
            gen,
            Envelope::p95(30.0).battery(0.0),
        ));
        assert!(fail.violations.iter().any(|v| v.contains("battery")));
    }
}
