//! Criterion bench for the discrete-event stream simulator (3000-frame
//! paper workload) and end-to-end strategy deployment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use d3_engine::{deploy_strategy, Strategy, VsmConfig};
use d3_model::zoo;
use d3_partition::Problem;
use d3_simnet::{NetworkCondition, TierProfiles};
use std::hint::black_box;

fn bench_stream(c: &mut Criterion) {
    let g = zoo::resnet18(224);
    let p = Problem::new(&g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi);
    let d = deploy_strategy(&p, Strategy::Hpa, VsmConfig::default()).unwrap();
    c.bench_function("stream/30fps_3000frames", |b| {
        b.iter(|| black_box(d.stream(30.0, 3000)));
    });
}

fn bench_deploy(c: &mut Criterion) {
    let g = zoo::inception_v4(224);
    let p = Problem::new(&g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi);
    let mut group = c.benchmark_group("deploy_inception");
    for s in [Strategy::Hpa, Strategy::HpaVsm, Strategy::Dads] {
        group.bench_function(BenchmarkId::from_parameter(s.label()), |b| {
            b.iter(|| black_box(deploy_strategy(&p, s, VsmConfig::default())));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stream, bench_deploy);
criterion_main!(benches);
