//! Criterion benches for the numerical substrate: whole-tensor versus
//! tiled (sequential and thread-parallel) execution of a conv stack.
//! The parallel/sequential ratio is the *actual compute* speedup VSM
//! achieves on this machine, overlap redundancy included — on a
//! single-core host (e.g. a CI container) the parallel path necessarily
//! matches the sequential one plus thread overhead; run on a multi-core
//! machine to observe the sub-linear tile speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use d3_model::{zoo, Executor, NodeId};
use d3_tensor::Tensor;
use d3_vsm::{TileExecutor, VsmPlan};
use std::hint::black_box;

fn stack() -> (d3_model::DnnGraph, Vec<NodeId>, Tensor) {
    let g = zoo::chain_cnn(3, 16, 64);
    let run = vec![NodeId(1), NodeId(2), NodeId(3)];
    let input = Tensor::random(3, 64, 64, 7);
    (g, run, input)
}

fn bench_whole(c: &mut Criterion) {
    let (g, run, input) = stack();
    let exec = Executor::new(&g, 42);
    let tex = TileExecutor::new(&exec, VsmPlan::new(&g, &run, 1, 1).unwrap());
    c.bench_function("conv_stack/whole", |b| {
        b.iter(|| black_box(tex.run_whole(&input)));
    });
}

fn bench_tiled(c: &mut Criterion) {
    let (g, run, input) = stack();
    let exec = Executor::new(&g, 42);
    let mut group = c.benchmark_group("conv_stack_tiled");
    for (rows, cols) in [(2, 2), (3, 3)] {
        let plan = VsmPlan::new(&g, &run, rows, cols).unwrap();
        let tex = TileExecutor::new(&exec, plan);
        group.bench_function(
            BenchmarkId::new("sequential", format!("{rows}x{cols}")),
            |b| {
                b.iter(|| black_box(tex.run_sequential(&input)));
            },
        );
        group.bench_function(
            BenchmarkId::new("parallel", format!("{rows}x{cols}")),
            |b| {
                b.iter(|| black_box(tex.run_parallel(&input)));
            },
        );
    }
    group.finish();
}

fn bench_gemm_vs_direct(c: &mut Criterion) {
    use d3_tensor::ops::{Conv2d, ConvSpec};
    let conv = Conv2d::random(ConvSpec::new(16, 32, 3, 1, 1), 5);
    let input = Tensor::random(16, 56, 56, 6);
    let mut group = c.benchmark_group("conv_3x3_16to32_56x56");
    group.bench_function("direct", |b| b.iter(|| black_box(conv.forward(&input))));
    group.bench_function("im2col_gemm", |b| {
        b.iter(|| black_box(conv.forward_gemm(&input)))
    });
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let t = Tensor::random(64, 56, 56, 3);
    c.bench_function("wire/encode_decode_800KB", |b| {
        b.iter(|| {
            let bytes = d3_engine::encode(black_box(&t));
            black_box(d3_engine::decode(bytes).unwrap())
        });
    });
}

criterion_group!(
    benches,
    bench_whole,
    bench_tiled,
    bench_gemm_vs_direct,
    bench_wire
);
criterion_main!(benches);
