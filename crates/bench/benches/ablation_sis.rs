//! Ablation bench: HPA with and without the SIS update and the I/O
//! look-ahead — both wall-clock cost and (printed once) solution quality.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use d3_model::zoo;
use d3_partition::{Hpa, HpaOptions, Partitioner, Problem};
use d3_simnet::{NetworkCondition, TierProfiles};
use std::hint::black_box;

fn bench_variants(c: &mut Criterion) {
    let profiles = TierProfiles::paper_testbed();
    let variants: Vec<(&str, HpaOptions)> = vec![
        ("full", HpaOptions::paper()),
        ("no_sis", HpaOptions::paper().without_sis()),
        ("no_io", HpaOptions::paper().without_io_heuristic()),
        ("greedy", HpaOptions::paper().without_cut_search()),
    ];
    let g = zoo::inception_v4(224);
    let p = Problem::new(&g, &profiles, NetworkCondition::WiFi);
    let mut group = c.benchmark_group("hpa_variants_inception");
    for (name, opts) in &variants {
        let policy = Hpa(opts.clone());
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| black_box(policy.partition(&p).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
