//! Criterion benches for the partitioning algorithms themselves: HPA,
//! DADS (min-cut), Neurosurgeon and the dynamic local update, on the
//! real evaluation models. These quantify the paper's O(|V|+|L|) claims
//! in wall-clock terms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use d3_model::{zoo, NodeId};
use d3_partition::{repartition_local, Dads, Hpa, HpaOptions, Neurosurgeon, Partitioner, Problem};
use d3_simnet::{NetworkCondition, TierProfiles};
use std::hint::black_box;

fn bench_hpa(c: &mut Criterion) {
    let profiles = TierProfiles::paper_testbed();
    let mut group = c.benchmark_group("hpa");
    for g in zoo::all_models(224) {
        let p = Problem::new(&g, &profiles, NetworkCondition::WiFi);
        let policy = Hpa::paper();
        group.bench_with_input(BenchmarkId::from_parameter(g.name()), &p, |b, p| {
            b.iter(|| black_box(policy.partition(p).unwrap()));
        });
    }
    group.finish();
}

fn bench_hpa_greedy_only(c: &mut Criterion) {
    let profiles = TierProfiles::paper_testbed();
    let policy = Hpa(HpaOptions::paper().without_cut_search());
    let mut group = c.benchmark_group("hpa_greedy_only");
    for g in [zoo::vgg16(224), zoo::inception_v4(224)] {
        let p = Problem::new(&g, &profiles, NetworkCondition::WiFi);
        group.bench_with_input(BenchmarkId::from_parameter(g.name()), &p, |b, p| {
            b.iter(|| black_box(policy.partition(p).unwrap()));
        });
    }
    group.finish();
}

fn bench_dads(c: &mut Criterion) {
    let profiles = TierProfiles::paper_testbed();
    let mut group = c.benchmark_group("dads_mincut");
    for g in zoo::all_models(224) {
        let p = Problem::new(&g, &profiles, NetworkCondition::WiFi);
        group.bench_with_input(BenchmarkId::from_parameter(g.name()), &p, |b, p| {
            b.iter(|| black_box(Dads.partition(p).unwrap()));
        });
    }
    group.finish();
}

fn bench_neurosurgeon(c: &mut Criterion) {
    let profiles = TierProfiles::paper_testbed();
    let mut group = c.benchmark_group("neurosurgeon");
    for g in [zoo::alexnet(224), zoo::vgg16(224)] {
        let p = Problem::new(&g, &profiles, NetworkCondition::WiFi);
        group.bench_with_input(BenchmarkId::from_parameter(g.name()), &p, |b, p| {
            b.iter(|| black_box(Neurosurgeon.partition(p).expect("chain")));
        });
    }
    group.finish();
}

fn bench_local_update(c: &mut Criterion) {
    let profiles = TierProfiles::paper_testbed();
    let opts = HpaOptions::paper();
    let mut group = c.benchmark_group("local_repartition");
    for g in zoo::all_models(224) {
        let mut p = Problem::new(&g, &profiles, NetworkCondition::WiFi);
        let base = Hpa(opts.clone()).partition(&p).unwrap();
        let victim = NodeId(g.len() / 2);
        p.scale_vertex(victim, base.tier(victim), 4.0);
        group.bench_function(BenchmarkId::from_parameter(g.name()), |b| {
            b.iter(|| black_box(repartition_local(&p, &base, victim, &opts)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hpa,
    bench_hpa_greedy_only,
    bench_dads,
    bench_neurosurgeon,
    bench_local_update
);
criterion_main!(benches);
