//! Ablation bench: VSM planning cost and plan quality across tile grids.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use d3_model::{zoo, NodeId};
use d3_vsm::VsmPlan;
use std::hint::black_box;

fn bench_planning(c: &mut Criterion) {
    let g = zoo::vgg16(224);
    let run: Vec<NodeId> = (1..=2).map(NodeId).collect();
    let mut group = c.benchmark_group("vsm_plan_vgg_conv1_2");
    for (rows, cols) in [(1, 1), (2, 2), (4, 4), (8, 8)] {
        group.bench_function(BenchmarkId::from_parameter(format!("{rows}x{cols}")), |b| {
            b.iter(|| black_box(VsmPlan::new(&g, &run, rows, cols).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_planning);
criterion_main!(benches);
