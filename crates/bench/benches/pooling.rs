//! Criterion bench for per-stage worker pools and the batching
//! front-end: streams a fixed frame burst through `StreamPipeline`
//! sweeping pool sizes 1/2/4 and batch sizes 1/4 on a weight-heavy
//! model (dense layers dominate, so batching's operator-major execution
//! keeps weights cache-hot across frames).
//!
//! Two workload shapes (the burst protocol itself is the shared
//! `d3_test_support` burst harness, identical to the CI perf gate's):
//!
//! - `compute_bound`: raw tensor arithmetic. Pool scaling here tracks
//!   host core count (on a single-core host pools cannot beat 1x).
//! - `latency_bound`: the device stage stalls 5 ms per frame (injected
//!   delay — an RPC-bound or contended stage). Pool scaling here tracks
//!   pipeline concurrency and is host-independent, which is why the CI
//!   perf gate anchors on it.

use criterion::{criterion_group, criterion_main, Criterion};
use d3_engine::stream::{BatchOptions, PoolOptions, StreamOptions};
use d3_model::zoo;
use d3_simnet::Tier;
use d3_test_support::{even_split_deployment, stream_burst};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const FRAMES: usize = 16;

fn bench_pool_sweep(c: &mut Criterion) {
    let g = Arc::new(zoo::conv_mlp(8));
    let d = even_split_deployment(&g);
    let mut group = c.benchmark_group("pooling/compute_bound");
    for pool in [1usize, 2, 4] {
        group.bench_function(format!("pool{pool}_batch1"), |b| {
            b.iter(|| {
                black_box(stream_burst(
                    &g,
                    &d,
                    StreamOptions::new()
                        .capacity(16)
                        .pool(PoolOptions::uniform(pool)),
                    FRAMES,
                ))
            });
        });
    }
    for batch in [1usize, 4] {
        group.bench_function(format!("pool1_batch{batch}"), |b| {
            b.iter(|| {
                black_box(stream_burst(
                    &g,
                    &d,
                    StreamOptions::new()
                        .capacity(16)
                        .batching(BatchOptions::frames(batch).deadline(Duration::from_millis(2))),
                    FRAMES,
                ))
            });
        });
    }
    group.finish();
}

fn bench_latency_bound_pool_sweep(c: &mut Criterion) {
    let g = Arc::new(zoo::chain_cnn(4, 8, 16));
    let d = even_split_deployment(&g);
    let mut group = c.benchmark_group("pooling/latency_bound_device");
    for pool in [1usize, 2, 4] {
        group.bench_function(format!("pool{pool}"), |b| {
            b.iter(|| {
                black_box(stream_burst(
                    &g,
                    &d,
                    StreamOptions::new()
                        .capacity(16)
                        .workers(Tier::Device, pool)
                        .inject_delay(Tier::Device, 1, Duration::from_millis(5)),
                    FRAMES,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pool_sweep, bench_latency_bound_pool_sweep);
criterion_main!(benches);
