//! Criterion bench for the streaming serving path: per-frame cost of a
//! resident `StreamPipeline` (prebuilt stage weights, bounded queues)
//! vs the one-shot `run_distributed` path a sequential serve loop pays,
//! plus the raw `SegmentExecutor` frame cost.

use criterion::{criterion_group, criterion_main, Criterion};
use d3_engine::stream::{StreamOptions, StreamPipeline};
use d3_engine::{run_distributed, Deployment};
use d3_model::{zoo, NodeId, SegmentExecutor};
use d3_partition::{EvenSplit, Partitioner, Problem};
use d3_simnet::{NetworkCondition, TierProfiles};
use d3_tensor::Tensor;
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::Arc;

const SEED: u64 = 7;

fn bench_stream_vs_oneshot(c: &mut Criterion) {
    let g = Arc::new(zoo::chain_cnn(6, 8, 16));
    let p = Problem::new(
        g.clone(),
        &TierProfiles::paper_testbed(),
        NetworkCondition::WiFi,
    );
    let assignment = EvenSplit.partition(&p).unwrap();
    let deployment = Deployment::new(&p, assignment.clone(), None);
    let input = Tensor::random(3, 16, 16, 1);

    let mut group = c.benchmark_group("streaming_frame");
    group.bench_function("one_shot_run_distributed", |b| {
        b.iter(|| black_box(run_distributed(&g, SEED, &assignment, None, &input).unwrap()));
    });
    let pipeline =
        StreamPipeline::new(g.clone(), SEED, &deployment, None, StreamOptions::new()).unwrap();
    group.bench_function("resident_stream_pipeline", |b| {
        b.iter(|| {
            pipeline.submit_blocking(&input).unwrap();
            black_box(pipeline.recv().unwrap())
        });
    });
    group.finish();
    let report = pipeline.close();
    println!(
        "stream report: {:.1} fps sustained, bottleneck {:?}",
        report.measured.throughput_fps,
        report.bottleneck()
    );
}

fn bench_segment_executor(c: &mut Criterion) {
    let g = Arc::new(zoo::chain_cnn(6, 8, 16));
    let members: Vec<NodeId> = g.ids().collect();
    let seg = SegmentExecutor::new(g.clone(), SEED, &members);
    let mut boundary = HashMap::new();
    boundary.insert(g.input(), Tensor::random(3, 16, 16, 1));
    c.bench_function("segment_executor/prebuilt_full_graph", |b| {
        b.iter(|| black_box(seg.run(boundary.clone())));
    });
}

criterion_group!(benches, bench_stream_vs_oneshot, bench_segment_executor);
criterion_main!(benches);
