//! Ablation bench: local re-partition versus full HPA re-run — the
//! paper's argument for *partial* adjustment under dynamics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use d3_model::{zoo, NodeId};
use d3_partition::{repartition_local, Hpa, HpaOptions, Partitioner, Problem};
use d3_simnet::{NetworkCondition, TierProfiles};
use std::hint::black_box;

fn bench_local_vs_full(c: &mut Criterion) {
    let profiles = TierProfiles::paper_testbed();
    let opts = HpaOptions::paper();
    for g in [zoo::darknet53(224), zoo::inception_v4(224)] {
        let mut p = Problem::new(&g, &profiles, NetworkCondition::WiFi);
        let policy = Hpa(opts.clone());
        let base = policy.partition(&p).unwrap();
        let victim = NodeId(g.len() / 2);
        p.scale_vertex(victim, base.tier(victim), 4.0);
        let mut group = c.benchmark_group(format!("dynamic_{}", g.name()));
        group.bench_function(BenchmarkId::from_parameter("local_update"), |b| {
            b.iter(|| black_box(repartition_local(&p, &base, victim, &opts)));
        });
        group.bench_function(BenchmarkId::from_parameter("full_rerun"), |b| {
            b.iter(|| black_box(policy.partition(&p).unwrap()));
        });
        group.finish();
    }
}

criterion_group!(benches, bench_local_vs_full);
criterion_main!(benches);
