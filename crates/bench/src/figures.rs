//! Reproductions of the paper's figures (data series printed as markdown
//! tables; the paper plots them as bar/line charts).

use crate::report::{fmt_mbit, fmt_s, fmt_x, md_table, Section};
use d3_engine::{deploy_strategy, Strategy, VsmConfig};
use d3_model::{zoo, DnnGraph, NodeId};
use d3_partition::Problem;
use d3_profiler::RegressionEstimator;
use d3_simnet::{NetworkCondition, NodeProfile, Tier, TierProfiles};

/// The five evaluation models at the paper's input size.
pub fn paper_models() -> Vec<DnnGraph> {
    zoo::all_models(zoo::IMAGENET_HW)
}

fn problem(g: &DnnGraph, net: NetworkCondition) -> Problem {
    Problem::new(g, &TierProfiles::paper_testbed(), net)
}

/// Single-frame end-to-end latency of a strategy; `None` when the
/// strategy does not apply to the topology.
pub fn strategy_latency(g: &DnnGraph, net: NetworkCondition, s: Strategy) -> Option<f64> {
    let p = problem(g, net);
    deploy_strategy(&p, s, VsmConfig::default()).map(|d| d.frame_latency_s)
}

/// Problem against the §IV implementation testbed (RPi4 device) — used
/// by Fig. 9, whose device-only baseline is explicitly the Raspberry Pi.
fn rpi_problem(g: &DnnGraph, net: NetworkCondition) -> Problem {
    Problem::new(g, &TierProfiles::rpi_testbed(), net)
}

/// Single-frame latency on the RPi-device testbed.
pub fn strategy_latency_rpi(g: &DnnGraph, net: NetworkCondition, s: Strategy) -> Option<f64> {
    let p = rpi_problem(g, net);
    deploy_strategy(&p, s, VsmConfig::default()).map(|d| d.frame_latency_s)
}

/// Fig. 1: per-layer inference latency and output size on a Raspberry
/// Pi 4 for VGG-16, ResNet-18 and Darknet-53, grouped exactly as the
/// paper's x-axes (blocks and residual groups aggregated).
pub fn fig1() -> Section {
    let rpi = NodeProfile::raspberry_pi4();
    let mut body = String::new();
    for g in [zoo::vgg16(224), zoo::resnet18(224), zoo::darknet53(224)] {
        let groups = fig1_groups(&g);
        let mut rows = Vec::new();
        for (label, members) in &groups {
            let latency: f64 = members.iter().map(|&id| rpi.layer_latency(&g, id)).sum();
            let out_bytes = g
                .node(*members.last().expect("non-empty group"))
                .output_bytes();
            rows.push(vec![
                label.clone(),
                fmt_s(latency),
                format!("{:.2} MB", out_bytes as f64 / 1e6),
            ]);
        }
        body.push_str(&format!("### {}\n\n", zoo::display_name(g.name())));
        body.push_str(&md_table(&["layer", "latency", "output size"], &rows));
        body.push('\n');
    }
    Section::new(
        "Fig. 1 — per-layer latency and output size on Raspberry Pi 4 (3×224×224)",
        body,
    )
}

/// Grouping of graph vertices into the paper's Fig. 1 x-axis labels.
pub fn fig1_groups(g: &DnnGraph) -> Vec<(String, Vec<NodeId>)> {
    let mut order: Vec<String> = Vec::new();
    let mut map: std::collections::HashMap<String, Vec<NodeId>> = std::collections::HashMap::new();
    for id in g.layer_ids() {
        let name = &g.node(id).name;
        // Skip plumbing vertices the paper's plots do not show.
        if name == "softmax" || name == "gap" || name.starts_with("maxpool") {
            continue;
        }
        let label = match g.name() {
            "resnet18" | "darknet53" => {
                // block3.conv1 -> block3; residual2.1.conv1 -> residual2.
                name.split('.').next().expect("non-empty name").to_string()
            }
            _ => name.clone(),
        };
        let label = if label.starts_with("fc") && g.name() != "vgg16" {
            "fc".to_string()
        } else {
            label
        };
        if !map.contains_key(&label) {
            order.push(label.clone());
        }
        map.entry(label).or_default().push(id);
    }
    order
        .into_iter()
        .map(|l| {
            let members = map.remove(&l).expect("label recorded");
            (l, members)
        })
        .collect()
}

/// Fig. 3: the Inception-v4 grid module and its DAG graph layers
/// `Z0..Z6` (the layering HPA sweeps).
pub fn fig3() -> Section {
    let g = zoo::inception_grid_module(8);
    let layers = g.graph_layers();
    let mut rows = Vec::new();
    for (q, members) in layers.iter().enumerate() {
        let names: Vec<String> = members
            .iter()
            .map(|&id| format!("{} ({})", id, g.node(id).name))
            .collect();
        rows.push(vec![format!("Z{q}"), names.join(", ")]);
    }
    Section::new(
        "Fig. 3 — grid module of Inception-v4 as a DAG, with HPA graph layers",
        md_table(&["graph layer", "vertices"], &rows),
    )
}

/// Fig. 4: regression-predicted vs. actual per-layer latency of AlexNet
/// on the CPU (edge) and GPU (cloud) nodes; the estimator is trained on
/// the other networks (held-out evaluation).
pub fn fig4() -> Section {
    let profiles = TierProfiles::paper_testbed();
    let train = [zoo::vgg16(224), zoo::resnet18(224), zoo::darknet53(224)];
    let refs: Vec<&DnnGraph> = train.iter().collect();
    let est = RegressionEstimator::train(&profiles, &refs, 0.05, 3, 42);
    let alexnet = zoo::alexnet(224);
    let mut body = String::new();
    for (tier, label) in [
        (Tier::Edge, "CPU (i7-8700)"),
        (Tier::Cloud, "GPU (RTX 2080 Ti)"),
    ] {
        let mut rows = Vec::new();
        for id in alexnet.layer_ids() {
            let node = alexnet.node(id);
            if node.name == "softmax" {
                continue;
            }
            rows.push(vec![
                node.name.clone(),
                fmt_s(profiles.layer_latency(&alexnet, id, tier)),
                fmt_s(est.estimate(&alexnet, id, tier)),
            ]);
        }
        let acc = est.evaluate(&profiles, &alexnet, tier);
        body.push_str(&format!("### {label}\n\n"));
        body.push_str(&md_table(&["layer", "actual", "predicted"], &rows));
        body.push_str(&format!(
            "\nMAPE = {:.1} %, R² = {:.4}\n\n",
            acc.mape * 100.0,
            acc.r_squared
        ));
    }
    Section::new(
        "Fig. 4 — regression model: actual vs predicted AlexNet layer latency",
        body,
    )
}

/// Fig. 9: end-to-end latency speedup of HPA vs device-/edge-/cloud-only
/// under each Table III network condition (device-only = 1× baseline).
pub fn fig9() -> Section {
    let mut body = String::new();
    for net in NetworkCondition::TABLE3 {
        let mut rows = Vec::new();
        for g in paper_models() {
            let base = strategy_latency_rpi(&g, net, Strategy::DeviceOnly).expect("always applies");
            let cell = |s: Strategy| {
                strategy_latency_rpi(&g, net, s)
                    .map(|l| fmt_x(base / l))
                    .unwrap_or_else(|| "n/a".into())
            };
            rows.push(vec![
                zoo::display_name(g.name()).to_string(),
                fmt_x(1.0),
                cell(Strategy::EdgeOnly),
                cell(Strategy::CloudOnly),
                cell(Strategy::Hpa),
            ]);
        }
        body.push_str(&format!("### {net}\n\n"));
        body.push_str(&md_table(
            &["model", "Device-only", "Edge-only", "Cloud-only", "HPA"],
            &rows,
        ));
        body.push('\n');
    }
    Section::new(
        "Fig. 9 — latency speedup of HPA vs single-tier strategies (device-only = 1×)",
        body,
    )
}

/// Fig. 10: HPA vs Neurosurgeon and DADS (slowest applicable baseline of
/// the three = 1×; the paper's bars are likewise relative).
pub fn fig10() -> Section {
    let mut body = String::new();
    for net in NetworkCondition::TABLE3 {
        let mut rows = Vec::new();
        for g in paper_models() {
            let ns = strategy_latency(&g, net, Strategy::Neurosurgeon);
            let dads = strategy_latency(&g, net, Strategy::Dads).expect("applies");
            let hpa = strategy_latency(&g, net, Strategy::Hpa).expect("applies");
            let base = ns.unwrap_or(dads).max(dads).max(hpa);
            let cell = |l: Option<f64>| l.map(|l| fmt_x(base / l)).unwrap_or_else(|| "n/a".into());
            rows.push(vec![
                zoo::display_name(g.name()).to_string(),
                cell(ns),
                cell(Some(dads)),
                cell(Some(hpa)),
            ]);
        }
        body.push_str(&format!("### {net}\n\n"));
        body.push_str(&md_table(&["model", "Neurosurgeon", "DADS", "HPA"], &rows));
        body.push('\n');
    }
    Section::new(
        "Fig. 10 — latency speedup of HPA vs Neurosurgeon and DADS (slowest = 1×)",
        body,
    )
}

/// Fig. 11: Inception-v4 latency speedup (device-only = 1×) as the
/// LAN↔cloud bandwidth sweeps 10–100 Mbps.
pub fn fig11() -> Section {
    let g = zoo::inception_v4(224);
    let mut rows = Vec::new();
    for mbps in (10..=100).step_by(10) {
        let net = NetworkCondition::custom_backbone(mbps as f64);
        let base = strategy_latency(&g, net, Strategy::DeviceOnly).expect("applies");
        let cell = |s: Strategy| {
            strategy_latency(&g, net, s)
                .map(|l| fmt_x(base / l))
                .unwrap_or_else(|| "n/a".into())
        };
        rows.push(vec![
            format!("{mbps}"),
            fmt_x(1.0),
            cell(Strategy::EdgeOnly),
            cell(Strategy::CloudOnly),
            cell(Strategy::Dads),
            cell(Strategy::Hpa),
        ]);
    }
    Section::new(
        "Fig. 11 — Inception-v4 speedup vs LAN↔cloud bandwidth (device-only = 1×)",
        md_table(
            &[
                "Mbps",
                "Device-only",
                "Edge-only",
                "Cloud-only",
                "DADS",
                "HPA",
            ],
            &rows,
        ),
    )
}

/// Fig. 12: the full D3 (HPA+VSM with four edge nodes, 2×2 tiles) against
/// every baseline under Wi-Fi (device-only = 1×).
pub fn fig12() -> Section {
    let net = NetworkCondition::WiFi;
    let mut rows = Vec::new();
    for g in paper_models() {
        let base = strategy_latency(&g, net, Strategy::DeviceOnly).expect("applies");
        let cell = |s: Strategy| {
            strategy_latency(&g, net, s)
                .map(|l| fmt_x(base / l))
                .unwrap_or_else(|| "n/a".into())
        };
        rows.push(vec![
            zoo::display_name(g.name()).to_string(),
            fmt_x(1.0),
            cell(Strategy::EdgeOnly),
            cell(Strategy::CloudOnly),
            cell(Strategy::Neurosurgeon),
            cell(Strategy::Dads),
            cell(Strategy::Hpa),
            cell(Strategy::HpaVsm),
        ]);
    }
    Section::new(
        "Fig. 12 — full D3 (HPA+VSM, 4 edge nodes, 2×2 tiles) under Wi-Fi (device-only = 1×)",
        md_table(
            &[
                "model",
                "Device-only",
                "Edge-only",
                "Cloud-only",
                "Neurosurgeon",
                "DADS",
                "HPA",
                "HPA+VSM",
            ],
            &rows,
        ),
    )
}

/// Fig. 13: per-image data shipped over the LAN→cloud backbone for
/// cloud-only, DADS and D3, per model and network condition.
pub fn fig13() -> Section {
    let mut body = String::new();
    for g in paper_models() {
        let mut rows = Vec::new();
        for net in NetworkCondition::TABLE3 {
            let p = problem(&g, net);
            let bytes = |s: Strategy| {
                deploy_strategy(&p, s, VsmConfig::default())
                    .map(|d| fmt_mbit(d.backbone_bytes))
                    .unwrap_or_else(|| "n/a".into())
            };
            rows.push(vec![
                net.to_string(),
                bytes(Strategy::CloudOnly),
                bytes(Strategy::Dads),
                bytes(Strategy::HpaVsm),
            ]);
        }
        body.push_str(&format!("### {}\n\n", zoo::display_name(g.name())));
        body.push_str(&md_table(&["network", "Cloud-only", "DADS", "D3"], &rows));
        body.push('\n');
    }
    Section::new(
        "Fig. 13 — per-image backbone communication to the cloud (megabits)",
        body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_groups_match_paper_axes() {
        let vgg = fig1_groups(&zoo::vgg16(224));
        assert_eq!(vgg.len(), 16, "conv1..13 + fc1..3");
        let resnet = fig1_groups(&zoo::resnet18(224));
        // conv1, block1..8, fc = 10 labels.
        assert_eq!(resnet.len(), 10);
        let darknet = fig1_groups(&zoo::darknet53(224));
        // conv1..6, residual1..5, fc = 12 labels.
        assert_eq!(darknet.len(), 12);
    }

    #[test]
    fn sections_render_nonempty() {
        for s in [fig3(), fig11()] {
            let r = s.render();
            assert!(r.len() > 100);
        }
    }

    #[test]
    fn fig9_hpa_never_below_one() {
        // HPA's speedup over device-only must be ≥ 1 everywhere.
        for net in NetworkCondition::TABLE3 {
            for g in paper_models() {
                let base = strategy_latency(&g, net, Strategy::DeviceOnly).unwrap();
                let hpa = strategy_latency(&g, net, Strategy::Hpa).unwrap();
                assert!(base / hpa >= 1.0 - 1e-9, "{} {net}", g.name());
            }
        }
    }
}
