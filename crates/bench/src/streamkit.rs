//! Shared streaming-burst harness for the pooling bench and the CI
//! perf gate, so both measure exactly the same protocol: an even
//! three-way split deployment, submit-until-backpressure admission with
//! drain-on-full, and the closing report's measured statistics.

use d3_engine::stream::{StreamOptions, StreamPipeline};
use d3_engine::{Deployment, StreamStats};
use d3_model::DnnGraph;
use d3_partition::{EvenSplit, Partitioner, Problem};
use d3_simnet::{NetworkCondition, TierProfiles};
use d3_tensor::Tensor;
use std::sync::Arc;

/// Weight seed shared by every streaming measurement.
pub const SEED: u64 = 7;

/// Deploys `g` on the cost-oblivious even three-way split (every stage
/// does real work) under the paper testbed's Wi-Fi condition.
#[must_use]
pub fn even_split_deployment(g: &Arc<DnnGraph>) -> Deployment {
    let p = Problem::new(
        g.clone(),
        &TierProfiles::paper_testbed(),
        NetworkCondition::WiFi,
    );
    let assignment = EvenSplit.partition(&p).unwrap();
    Deployment::new(&p, assignment, None)
}

/// Streams `frames` frames end to end (submit until backpressure, drain
/// one, retry) and returns the closing report's measured statistics.
///
/// # Panics
///
/// Panics when the pipeline cannot be built or a worker dies.
#[must_use]
pub fn stream_burst(
    g: &Arc<DnnGraph>,
    d: &Deployment,
    options: StreamOptions,
    frames: usize,
) -> StreamStats {
    let pipeline = StreamPipeline::new(g.clone(), SEED, d, None, options).unwrap();
    let shape = g.input_shape();
    let input = Tensor::random(shape.c, shape.h, shape.w, 1);
    let mut received = 0usize;
    for _ in 0..frames {
        while pipeline.submit(&input).is_err() {
            let _ = std::hint::black_box(pipeline.recv().unwrap());
            received += 1;
        }
    }
    while received < frames {
        let _ = std::hint::black_box(pipeline.recv().unwrap());
        received += 1;
    }
    pipeline.close().measured
}
