//! Reproductions of the paper's tables.

use crate::report::{fmt_s, md_table, Section};
use d3_engine::{deploy_strategy, Strategy, VsmConfig};
use d3_model::{zoo, NodeId};
use d3_partition::{placement, Problem};
use d3_simnet::{NetworkCondition, TierProfiles};

/// Table I: total latencies of processing the pair (conv1, maxpool1) of
/// AlexNet under every tier placement, inputs at the device tier.
pub fn table1() -> Section {
    let g = zoo::alexnet(224);
    let p = Problem::new(&g, &TierProfiles::paper_testbed(), NetworkCondition::WiFi);
    let rows: Vec<Vec<String>> = placement::table1(&p, NodeId(1), NodeId(2))
        .into_iter()
        .map(|r| vec![r.li.to_string(), r.lj.to_string(), fmt_s(r.total_s)])
        .collect();
    Section::new(
        "Table I — pairwise placement latencies (vi = alexnet conv1, vj = maxpool1, Wi-Fi)",
        md_table(
            &["location of vi", "location of vj", "total latency"],
            &rows,
        ),
    )
}

/// Table II: per-tier processing time of the deployed D3 partition for
/// the five DNNs on the Jetson-Nano / i7-8700 / RTX 2080 Ti testbed
/// under Wi-Fi.
///
/// Stage times are the *serial* (pre-VSM) per-tier sums of the joint
/// HPA+VSM assignment — exactly the situation the paper's Table II
/// depicts to motivate VSM: "the processing time of the edge node is
/// longer than that of the cloud node … the edge node becomes the
/// bottleneck of the synergistic inference".
pub fn table2() -> Section {
    let profiles = TierProfiles::table2_testbed();
    let mut rows = Vec::new();
    for g in zoo::all_models(zoo::IMAGENET_HW) {
        let p = Problem::new(&g, &profiles, NetworkCondition::WiFi);
        let d = deploy_strategy(&p, Strategy::HpaVsm, VsmConfig::default()).expect("applies");
        let stages = d.assignment.stage_times(&p);
        rows.push(vec![
            zoo::display_name(g.name()).to_string(),
            format!("{:.1}", stages[0] * 1e3),
            format!("{:.1}", stages[1] * 1e3),
            format!("{:.1}", stages[2] * 1e3),
        ]);
    }
    Section::new(
        "Table II — synergistic inference time per tier after partitioning (ms, serial edge)",
        md_table(
            &[
                "DNN",
                "Device node (ms)",
                "Edge node (ms)",
                "Cloud node (ms)",
            ],
            &rows,
        ),
    )
}

/// Table III: the average uplink rates between tiers (configuration
/// input, reproduced verbatim from the paper).
pub fn table3() -> Section {
    let mut rows = Vec::new();
    let fmt = |v: f64| format!("{v:.2}");
    for (label, pick) in [
        ("device to edge", 0usize),
        ("edge to cloud", 1),
        ("device to cloud", 2),
    ] {
        let mut row = vec![label.to_string()];
        for net in NetworkCondition::TABLE3 {
            let r = net.rates();
            let v = [r.device_edge_mbps, r.edge_cloud_mbps, r.device_cloud_mbps][pick];
            row.push(fmt(v));
        }
        rows.push(row);
    }
    Section::new(
        "Table III — average uplink rate (Mbps) between two nodes",
        md_table(&["link", "Wi-Fi", "4G", "5G", "Optical Network"], &rows),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_six_rows() {
        let s = table1();
        assert_eq!(s.body.lines().count(), 2 + 6);
    }

    #[test]
    fn table2_covers_five_models() {
        let s = table2();
        for name in [
            "AlexNet",
            "VGG-16",
            "ResNet-18",
            "Darknet-53",
            "Inception-v4",
        ] {
            assert!(s.body.contains(name), "missing {name}");
        }
    }

    #[test]
    fn table3_matches_paper_numbers() {
        let s = table3();
        for v in [
            "84.95", "31.53", "13.79", "22.75", "50.23", "18.75", "6.12", "11.64",
        ] {
            assert!(s.body.contains(v), "missing rate {v}");
        }
    }
}
