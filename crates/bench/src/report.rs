//! Plain-text/markdown report formatting shared by the figure binaries.

/// Renders a markdown table.
pub fn md_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Formats seconds with an adaptive unit.
pub fn fmt_s(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Formats a speedup multiplier.
pub fn fmt_x(x: f64) -> String {
    format!("{x:.2}×")
}

/// Formats bytes as megabits (the Fig. 13 unit).
pub fn fmt_mbit(bytes: u64) -> String {
    format!("{:.2} Mb", bytes as f64 * 8.0 / 1e6)
}

/// A titled report section.
#[derive(Debug, Clone)]
pub struct Section {
    /// Markdown heading.
    pub title: String,
    /// Body (markdown).
    pub body: String,
}

impl Section {
    /// Creates a section.
    pub fn new(title: impl Into<String>, body: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            body: body.into(),
        }
    }

    /// Renders heading + body.
    pub fn render(&self) -> String {
        format!("## {}\n\n{}\n", self.title, self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape() {
        let t = md_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert!(t.starts_with("| a | b |"));
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    fn units() {
        assert_eq!(fmt_s(2.5), "2.50 s");
        assert_eq!(fmt_s(0.0025), "2.50 ms");
        assert_eq!(fmt_s(2.5e-5), "25.0 µs");
        assert_eq!(fmt_x(3.417), "3.42×");
        assert_eq!(fmt_mbit(1_000_000), "8.00 Mb");
    }
}
