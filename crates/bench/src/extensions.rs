//! Extension studies beyond the paper's evaluation: the related-work
//! baselines it cites but does not measure (IONN, MoDNN), the energy
//! dimension its introduction motivates, and heterogeneous edge pools
//! (the AOFL direction).

use crate::report::{fmt_s, fmt_x, md_table, Section};
use d3_engine::{deploy_strategy, Strategy, VsmConfig};
use d3_model::{zoo, NodeId};
use d3_partition::{energy, neurosurgeon_energy, Ionn, Neurosurgeon, Partitioner, Problem};
use d3_simnet::{NetworkCondition, Tier, TierProfiles};
use d3_vsm::{compare_schemes, ModnnConfig, VsmPlan};

fn problem(g: &d3_model::DnnGraph, net: NetworkCondition) -> Problem {
    Problem::new(g, &TierProfiles::paper_testbed(), net)
}

/// IONN cold start: how the optimal split shifts as the one-time
/// parameter upload amortizes over more queries (chain models, Wi-Fi).
pub fn extension_ionn() -> Section {
    let mut body = String::new();
    for g in [zoo::alexnet(224), zoo::vgg16(224)] {
        let p = problem(&g, NetworkCondition::WiFi);
        let mut rows = Vec::new();
        for q in [1u64, 10, 100, 1_000, 100_000] {
            let a = Ionn::with_queries(q).partition(&p).expect("chain");
            let cloud = a.tiers().iter().filter(|t| **t == Tier::Cloud).count();
            rows.push(vec![
                format!("{q}"),
                format!("{cloud}"),
                fmt_s(a.total_latency(&p)),
            ]);
        }
        let ns = Neurosurgeon.partition(&p).expect("chain");
        rows.push(vec![
            "∞ (Neurosurgeon)".into(),
            format!(
                "{}",
                ns.tiers().iter().filter(|t| **t == Tier::Cloud).count()
            ),
            fmt_s(ns.total_latency(&p)),
        ]);
        body.push_str(&format!("### {}\n\n", zoo::display_name(g.name())));
        body.push_str(&md_table(
            &["expected queries", "layers offloaded", "steady-state Θ"],
            &rows,
        ));
        body.push('\n');
    }
    Section::new(
        "Extension — IONN: parameter-upload amortization (Wi-Fi)",
        body,
    )
}

/// MoDNN vs VSM: per-layer gather/scatter versus fused-tile redundancy on
/// each model's first tileable run (4 nodes, Wi-Fi LAN).
pub fn extension_modnn() -> Section {
    let mut rows = Vec::new();
    for g in zoo::all_models(zoo::IMAGENET_HW) {
        let p = problem(&g, NetworkCondition::WiFi);
        let all: Vec<NodeId> = g.layer_ids().collect();
        let runs = d3_vsm::find_tileable_runs(&g, &all, 2);
        let Some(run) = runs.first() else { continue };
        let times: Vec<f64> = run
            .iter()
            .map(|&id| p.vertex_time(id, Tier::Edge))
            .collect();
        let cfg = ModnnConfig {
            nodes: 4,
            lan_mbps: 84.95,
        };
        let Some((serial, modnn, vsm)) = compare_schemes(&g, run, &times, cfg, (2, 2)) else {
            continue;
        };
        rows.push(vec![
            zoo::display_name(g.name()).to_string(),
            format!("{}", run.len()),
            fmt_s(serial),
            format!("{} ({})", fmt_s(modnn), fmt_x(serial / modnn)),
            format!("{} ({})", fmt_s(vsm), fmt_x(serial / vsm)),
        ]);
    }
    Section::new(
        "Extension — MoDNN vs VSM on each model's first conv run (4 nodes, Wi-Fi LAN)",
        md_table(
            &[
                "model",
                "run layers",
                "serial",
                "MoDNN",
                "VSM (fused tiles)",
            ],
            &rows,
        ),
    )
}

/// Energy: battery joules per inference for each strategy, per network.
pub fn extension_energy() -> Section {
    let profiles = TierProfiles::paper_testbed();
    let mut body = String::new();
    for g in [zoo::alexnet(224), zoo::vgg16(224), zoo::darknet53(224)] {
        let mut rows = Vec::new();
        for net in NetworkCondition::TABLE3 {
            let p = problem(&g, net);
            let joules = |s: Strategy| {
                deploy_strategy(&p, s, VsmConfig::default())
                    .map(|d| format!("{:.3}", energy(&p, &d.assignment, &profiles).device_j()))
                    .unwrap_or_else(|| "n/a".into())
            };
            rows.push(vec![
                net.to_string(),
                joules(Strategy::DeviceOnly),
                joules(Strategy::CloudOnly),
                joules(Strategy::Hpa),
                joules(Strategy::HpaVsm),
            ]);
        }
        body.push_str(&format!(
            "### {} (battery J/inference)\n\n",
            zoo::display_name(g.name())
        ));
        body.push_str(&md_table(
            &["network", "Device-only", "Cloud-only", "HPA", "D3"],
            &rows,
        ));
        body.push('\n');
    }
    // Energy-aware Neurosurgeon, on the chains.
    let mut rows = Vec::new();
    for g in [zoo::alexnet(224), zoo::vgg16(224)] {
        let p = problem(&g, NetworkCondition::WiFi);
        let lat = Neurosurgeon.partition(&p).expect("chain");
        let en = neurosurgeon_energy(&p, &profiles).expect("chain");
        rows.push(vec![
            zoo::display_name(g.name()).to_string(),
            format!("{:.3}", energy(&p, &lat, &profiles).device_j()),
            format!("{:.3}", energy(&p, &en, &profiles).device_j()),
            fmt_s(lat.total_latency(&p)),
            fmt_s(en.total_latency(&p)),
        ]);
    }
    body.push_str("### Neurosurgeon objectives (Wi-Fi)\n\n");
    body.push_str(&md_table(
        &[
            "model",
            "latency-opt battery J",
            "energy-opt battery J",
            "latency-opt Θ",
            "energy-opt Θ",
        ],
        &rows,
    ));
    Section::new("Extension — per-inference energy accounting", body)
}

/// Heterogeneous edge pools: capacity-weighted tiles vs uniform tiles.
pub fn extension_hetero_vsm() -> Section {
    let g = zoo::chain_cnn(3, 16, 56);
    let run: Vec<NodeId> = (1..=3).map(NodeId).collect();
    let times = vec![0.02, 0.02, 0.02];
    let mut rows = Vec::new();
    for (label, speeds) in [
        ("homogeneous 1:1:1:1", vec![1.0, 1.0, 1.0, 1.0]),
        ("one fast node 3:1:1:1", vec![3.0, 1.0, 1.0, 1.0]),
        ("two tiers 2:2:1:1", vec![2.0, 2.0, 1.0, 1.0]),
        ("extreme 8:1:1:1", vec![8.0, 1.0, 1.0, 1.0]),
    ] {
        let uniform = VsmPlan::new(&g, &run, 2, 2).expect("plannable");
        let t_uniform = d3_vsm::parallel_time_weighted(&uniform, &times, &speeds);
        // Weighted 2×2: row weights from the stronger pair, column from
        // the per-row ratio.
        let rw = [speeds[0] + speeds[1], speeds[2] + speeds[3]];
        let cw = [speeds[0].max(speeds[2]), speeds[1].max(speeds[3])];
        let weighted = VsmPlan::weighted(&g, &run, &rw, &cw).expect("plannable");
        let t_weighted = d3_vsm::parallel_time_weighted(&weighted, &times, &speeds);
        rows.push(vec![
            label.to_string(),
            fmt_s(t_uniform),
            fmt_s(t_weighted),
            fmt_x(t_uniform / t_weighted),
        ]);
    }
    Section::new(
        "Extension — heterogeneous edge pools: uniform vs capacity-weighted tiles",
        md_table(&["pool", "uniform 2×2", "weighted 2×2", "gain"], &rows),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_sections_render() {
        for s in [extension_ionn(), extension_modnn(), extension_hetero_vsm()] {
            assert!(s.body.len() > 80, "{} too short", s.title);
        }
    }

    #[test]
    fn weighted_tiles_help_on_skewed_pools() {
        let s = extension_hetero_vsm();
        // The extreme row must show a gain > 1×.
        assert!(s.body.contains("extreme 8:1:1:1"));
    }
}
