//! # d3-bench
//!
//! The benchmark/figure harness of the D3 reproduction: one function (and
//! one binary) per table and figure of the paper's evaluation, plus the
//! ablation studies listed in DESIGN.md. Criterion benches under
//! `benches/` time the algorithms themselves.
//!
//! Run everything and regenerate the experiment report with:
//!
//! ```text
//! cargo run -p d3-bench --bin all_experiments
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod extensions;
pub mod figures;
pub mod report;
pub mod tables;

pub use report::Section;

/// Every experiment section in paper order (figures and tables), plus the
/// ablations. This is what `all_experiments` prints and what
/// EXPERIMENTS.md records.
pub fn all_sections() -> Vec<Section> {
    vec![
        figures::fig1(),
        figures::fig3(),
        figures::fig4(),
        tables::table1(),
        tables::table2(),
        tables::table3(),
        figures::fig9(),
        figures::fig10(),
        figures::fig11(),
        figures::fig12(),
        figures::fig13(),
        ablations::ablation_hpa_components(),
        ablations::ablation_tiers(),
        ablations::ablation_tile_grid(),
        ablations::ablation_dynamic(),
        extensions::extension_ionn(),
        extensions::extension_modnn(),
        extensions::extension_energy(),
        extensions::extension_hetero_vsm(),
    ]
}
