//! Diagnostic: per-model, per-network segment sizes and VSM effect.
//!
//! Not a paper artefact — a developer tool for inspecting where HPA puts
//! layers under each Table III condition and what the VSM-aware second
//! pass changes. (This is the view that drove the calibration notes in
//! DESIGN.md.)

use d3_engine::{deploy_strategy, Strategy, VsmConfig};
use d3_model::zoo;
use d3_partition::Problem;
use d3_simnet::{NetworkCondition, Tier, TierProfiles};

fn main() {
    for net in NetworkCondition::TABLE3 {
        println!("== {net}");
        for g in zoo::all_models(224) {
            let p = Problem::new(&g, &TierProfiles::paper_testbed(), net);
            let h = deploy_strategy(&p, Strategy::Hpa, VsmConfig::default()).expect("applies");
            let v = deploy_strategy(&p, Strategy::HpaVsm, VsmConfig::default()).expect("applies");
            let a = &h.assignment;
            let seg = |t: Tier| a.segment(t).len();
            println!(
                "{:<13} d={:<3} e={:<3} c={:<3} | HPA {:>7.1}ms  +VSM {:>7.1}ms  (edge stage {:>6.1} -> {:>6.1}ms, plans {})",
                g.name(),
                seg(Tier::Device) - 1,
                seg(Tier::Edge),
                seg(Tier::Cloud),
                h.frame_latency_s * 1e3,
                v.frame_latency_s * 1e3,
                h.stages[1].service_s * 1e3,
                v.stages[1].service_s * 1e3,
                v.vsm_plans.len()
            );
        }
    }
}
