//! Regenerates Table I: pairwise placement latencies.
fn main() {
    println!("{}", d3_bench::tables::table1().render());
}
