//! Regenerates Fig. 10: HPA vs Neurosurgeon and DADS.
fn main() {
    println!("{}", d3_bench::figures::fig10().render());
}
