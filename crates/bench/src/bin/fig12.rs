//! Regenerates Fig. 12: full D3 (HPA+VSM) vs all baselines.
fn main() {
    println!("{}", d3_bench::figures::fig12().render());
}
