//! CI perf gate: measure streaming throughput/latency across pool and
//! batch configurations, emit a machine-readable `BENCH_streaming.json`
//! snapshot, and (with `--check <baseline>`) fail when a *gated*
//! scenario's throughput regresses more than 30% against the checked-in
//! baseline.
//!
//! ```text
//! cargo run --release -p d3-bench --bin perf_gate -- \
//!     --out BENCH_streaming.json --check ci/BENCH_baseline.json
//! ```
//!
//! Scenario families (the burst protocol is the shared
//! `d3_test_support` burst harness, identical to the pooling bench):
//!
//! - `compute_*`: raw tensor arithmetic on a weight-heavy model.
//!   Absolute numbers are host-dependent, so these are **recorded but
//!   not gated** — a slower runner generation must not fail CI.
//! - `latency_bound_*`: the device stage stalls a fixed 5 ms per frame
//!   (injected delay), so throughput is pinned by pipeline concurrency,
//!   not host speed. These are the gated anchor — and the scenarios
//!   where worker pools must show their ≥ 2x scaling.
//! - `fleet_contention_*`: two co-resident latency-bound pipelines
//!   stream concurrently (the multi-tenant serving shape); the recorded
//!   figure is their aggregate throughput. Gated for the same reason —
//!   injected stalls pin the per-pipeline rate, so the aggregate is
//!   host-independent.
//! - `codec_constrained_*`: both inter-tier links shaped to 4 Mbit/s,
//!   so wire time pins throughput. `_raw` streams plain frames,
//!   `codec_constrained_link` the lossless codec — the shaping makes
//!   both host-independent (gated), and the pair pins the codec's
//!   constrained-link speedup (asserted ≥ 1.5x in-binary).
//! - `multiplex_100_sessions`: 100 sessions burst one frame each
//!   through a **single shared stage-pool set** (the session
//!   multiplexing path: thread count O(pool), not O(sessions)), with
//!   the same 5 ms injected device stall pinning the rate. Records the
//!   aggregate throughput and the worst per-session p99; gated, with an
//!   in-binary bound on that p99 and on losslessness per session.
//!
//! After the bench families the binary replays the **scenario matrix**
//! (`d3_test_support::{WorkloadGen, Scenario}`): seeded workload traces
//! — flash crowds, diurnal load with tenant churn, a backbone
//! bandwidth-collapse trace replayed live through `set_link_shaping`,
//! an energy-budgeted run, and a transformer stream through the
//! lossless codec — each judged against its pass/fail envelope
//! (drops == 0, worst per-tenant p95 bound, reconfiguration budget,
//! optional battery budget). Latency-bound scenarios (injected device
//! stall pins the rate) **gate**: an envelope violation fails CI.
//! Compute-bound scenarios (energy, transformer) are recorded only.
//! Every outcome lands in the `scenarios` array of the JSON snapshot.

use d3_engine::codec::WireCodec;
use d3_engine::link::{serve, LinkAddr, StageHost};
use d3_engine::stream::{BatchOptions, LinkShaping, PoolOptions, StreamOptions};
use d3_engine::{Deployment, RemoteOptions};
use d3_model::{zoo, DnnGraph};
use d3_simnet::Tier;
use d3_test_support::{
    even_split_deployment, run_scenario, stream_burst, Envelope, Scenario, ScenarioOutcome,
    WorkloadGen,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const FRAMES: usize = 24;
/// Best-of-N repetitions per scenario (quick mode; absorbs scheduler
/// noise without criterion's statistical machinery).
const REPS: usize = 3;
/// Throughput may regress at most this fraction against the baseline.
const TOLERANCE: f64 = 0.30;

struct Measurement {
    name: &'static str,
    throughput_fps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

impl Measurement {
    /// Whether the gate enforces this scenario (the host-independent
    /// latency-bound and fleet-contention families; compute scenarios
    /// are informational).
    fn gated(&self) -> bool {
        self.name.starts_with("latency_bound")
            || self.name.starts_with("fleet_contention")
            || self.name.starts_with("codec_constrained")
            || self.name.starts_with("multiplex")
    }
}

fn measure(
    name: &'static str,
    g: &Arc<DnnGraph>,
    d: &Deployment,
    options: StreamOptions,
) -> Measurement {
    let mut best = Measurement {
        name,
        throughput_fps: 0.0,
        p50_ms: 0.0,
        p99_ms: 0.0,
    };
    for _ in 0..REPS {
        let m = stream_burst(g, d, options.clone(), FRAMES);
        if m.throughput_fps > best.throughput_fps {
            best.throughput_fps = m.throughput_fps;
            best.p50_ms = m.p50_latency_s * 1e3;
            best.p99_ms = m.p99_latency_s * 1e3;
        }
    }
    println!(
        "  {name:<28} {:>9.1} fps   p50 {:>7.2} ms   p99 {:>7.2} ms",
        best.throughput_fps, best.p50_ms, best.p99_ms
    );
    best
}

fn run_suite() -> Vec<Measurement> {
    let mut out = Vec::new();

    println!("compute-bound (weight-heavy conv_mlp, even split; recorded, not gated):");
    let g = Arc::new(zoo::conv_mlp(8));
    let d = even_split_deployment(&g);
    for (pool, name) in [
        (1usize, "compute_pool1_batch1"),
        (2, "compute_pool2_batch1"),
        (4, "compute_pool4_batch1"),
    ] {
        let opts = StreamOptions::new()
            .capacity(16)
            .pool(PoolOptions::uniform(pool));
        out.push(measure(name, &g, &d, opts));
    }
    let batched = StreamOptions::new()
        .capacity(16)
        .batching(BatchOptions::frames(4).deadline(Duration::from_millis(2)));
    out.push(measure("compute_pool1_batch4", &g, &d, batched));

    println!("latency-bound (5 ms injected device stall per frame; gated):");
    let g = Arc::new(zoo::chain_cnn(4, 8, 16));
    let d = even_split_deployment(&g);
    for (pool, name) in [
        (1usize, "latency_bound_pool1"),
        (2, "latency_bound_pool2"),
        (4, "latency_bound_pool4"),
    ] {
        let opts = StreamOptions::new()
            .capacity(16)
            .workers(Tier::Device, pool)
            .inject_delay(Tier::Device, 1, Duration::from_millis(5));
        out.push(measure(name, &g, &d, opts));
    }

    println!("fleet contention (two co-resident latency-bound pipelines; gated):");
    out.push(measure_fleet("fleet_contention_2x", &g, &d));

    println!("session multiplexing (100 sessions, one shared stage-pool set; gated):");
    out.push(measure_multiplex("multiplex_100_sessions", &g, &d));

    println!("codec on a constrained link (4 Mbit/s shaped links; gated):");
    let g = Arc::new(zoo::chain_cnn(6, 8, 16));
    let d = even_split_deployment(&g);
    let shaped = || {
        StreamOptions::new()
            .capacity(16)
            .shape_links(LinkShaping::links(4.0, 4.0))
    };
    let raw = measure("codec_constrained_link_raw", &g, &d, shaped());
    let coded = measure(
        "codec_constrained_link",
        &g,
        &d,
        shaped().codec(WireCodec::Lossless),
    );
    // The tentpole claim, pinned where it matters: on a starved link the
    // lossless codec buys at least 1.5x streaming throughput.
    let speedup = coded.throughput_fps / raw.throughput_fps.max(1e-9);
    println!("  codec speedup on the constrained link: {speedup:.2}x");
    assert!(
        speedup >= 1.5,
        "lossless codec speedup {speedup:.2}x under 4 Mbit/s shaping \
         fell below the required 1.5x"
    );
    out.push(raw);
    out.push(coded);

    println!(
        "UDS loopback (edge stage behind a real Unix-socket stage link; recorded, not gated):"
    );
    out.push(measure_uds_loopback("uds_loopback_edge", &g, &d));
    out
}

/// Streams the burst with the edge segment proxied over a real
/// Unix-domain stage link served from a background thread of this
/// process — the multi-process wire path without the process-spawn
/// overhead. Loopback socket speed is host-dependent, so the scenario
/// is recorded but never gated.
fn measure_uds_loopback(name: &'static str, g: &Arc<DnnGraph>, d: &Deployment) -> Measurement {
    let path = std::env::temp_dir().join(format!("d3-gate-{}.sock", std::process::id()));
    let addr = LinkAddr::Uds(path.clone());
    let listener = addr.listen().expect("bind perf-gate stage link");
    let stop = Arc::new(AtomicBool::new(false));
    let server = {
        let mut host = StageHost::new(g.name().to_string(), Arc::clone(g));
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || serve(&listener, &mut host, &stop))
    };
    let opts = StreamOptions::new()
        .capacity(16)
        .remote(Tier::Edge, RemoteOptions::new(addr));
    let best = measure(name, g, d, opts);
    stop.store(true, Ordering::SeqCst);
    server.join().expect("perf-gate stage server panicked");
    let _ = std::fs::remove_file(path);
    best
}

/// Streams the latency-bound burst through **two** concurrent pipelines
/// of the same deployment (the multi-tenant serving shape) and records
/// their aggregate throughput and the slower tenant's latency
/// percentiles. The 5 ms injected device stall pins each pipeline's
/// rate, so the aggregate compares reliably across hosts.
fn measure_fleet(name: &'static str, g: &Arc<DnnGraph>, d: &Deployment) -> Measurement {
    let opts =
        StreamOptions::new()
            .capacity(16)
            .inject_delay(Tier::Device, 1, Duration::from_millis(5));
    let mut best = Measurement {
        name,
        throughput_fps: 0.0,
        p50_ms: 0.0,
        p99_ms: 0.0,
    };
    for _ in 0..REPS {
        let stats = std::thread::scope(|scope| {
            let tenants: Vec<_> = (0..2)
                .map(|_| {
                    let opts = opts.clone();
                    scope.spawn(move || stream_burst(g, d, opts, FRAMES))
                })
                .collect();
            tenants
                .into_iter()
                .map(|t| t.join().expect("tenant pipeline panicked"))
                .collect::<Vec<_>>()
        });
        let aggregate: f64 = stats.iter().map(|s| s.throughput_fps).sum();
        if aggregate > best.throughput_fps {
            best.throughput_fps = aggregate;
            best.p50_ms = stats.iter().map(|s| s.p50_latency_s).fold(0.0, f64::max) * 1e3;
            best.p99_ms = stats.iter().map(|s| s.p99_latency_s).fold(0.0, f64::max) * 1e3;
        }
    }
    println!(
        "  {name:<28} {:>9.1} fps   p50 {:>7.2} ms   p99 {:>7.2} ms",
        best.throughput_fps, best.p50_ms, best.p99_ms
    );
    best
}

/// Bursts one frame from each of 100 sessions through a single shared
/// pipeline: the root session plus 99 attached ones, driven by four
/// scoped producer threads (25 sessions each). Verifies the resident
/// thread count does not grow with sessions and that every session is
/// lossless (exactly its one frame back, zero drops), then records the
/// aggregate throughput and the **worst per-session p99**. The injected
/// 5 ms device stall pins the rate, so the figure is host-independent
/// and gated; the p99 also carries an in-binary 2 s sanity bound.
fn measure_multiplex(name: &'static str, g: &Arc<DnnGraph>, d: &Deployment) -> Measurement {
    use d3_engine::stream::StreamPipeline;
    const SESSIONS: usize = 100;
    let opts = StreamOptions::new()
        .capacity(16)
        .workers(Tier::Device, 4)
        .inject_delay(Tier::Device, 1, Duration::from_millis(5));
    let mut best = Measurement {
        name,
        throughput_fps: 0.0,
        p50_ms: 0.0,
        p99_ms: 0.0,
    };
    for _ in 0..REPS {
        let pipeline = StreamPipeline::new(
            g.clone(),
            d3_test_support::STREAM_SEED,
            d,
            None,
            opts.clone(),
        )
        .expect("multiplex pipeline builds");
        let resident = pipeline.resident_threads();
        let mut sessions = vec![pipeline.root_session()];
        for _ in 1..SESSIONS {
            sessions.push(pipeline.attach_session(1.0));
        }
        assert_eq!(
            pipeline.resident_threads(),
            resident,
            "attaching {SESSIONS} sessions must not spawn threads"
        );
        let shape = g.input_shape();
        let frames = d3_test_support::frame_burst(SESSIONS, (shape.c, shape.h, shape.w), 9_000);
        std::thread::scope(|scope| {
            for (chunk, inputs) in sessions.chunks(25).zip(frames.chunks(25)) {
                let pipeline = &pipeline;
                scope.spawn(move || {
                    for (&sid, input) in chunk.iter().zip(inputs) {
                        pipeline
                            .submit_blocking_as(sid, input)
                            .expect("multiplex submit");
                    }
                    for &sid in chunk {
                        pipeline.recv_as(sid).expect("multiplex recv");
                    }
                });
            }
        });
        let report = pipeline.close();
        assert_eq!(report.sessions.len(), SESSIONS);
        for s in &report.sessions {
            assert_eq!(
                (s.frames, s.drops),
                (1, 0),
                "every session lossless in the 100-session burst"
            );
        }
        let worst_p99 = report
            .sessions
            .iter()
            .map(|s| s.p99_latency_s)
            .fold(0.0, f64::max);
        assert!(
            worst_p99 < 2.0,
            "per-session p99 {worst_p99:.3}s blew the 2s bound"
        );
        if report.measured.throughput_fps > best.throughput_fps {
            best.throughput_fps = report.measured.throughput_fps;
            best.p50_ms = report.measured.p50_latency_s * 1e3;
            best.p99_ms = worst_p99 * 1e3;
        }
    }
    println!(
        "  {name:<28} {:>9.1} fps   p50 {:>7.2} ms   p99 {:>7.2} ms",
        best.throughput_fps, best.p50_ms, best.p99_ms
    );
    best
}

/// One scenario-matrix row: the replayed outcome plus whether its
/// envelope gates CI (latency-bound scenarios) or is recorded only
/// (compute-bound scenarios, host-dependent).
struct ScenarioRow {
    gated: bool,
    outcome: ScenarioOutcome,
}

/// The scenario matrix: seeded workload traces replayed through a live
/// shared pipeline. The 5 ms injected device stall pins the gated rows'
/// latency profile, so their envelopes compare reliably across hosts.
fn run_scenario_matrix() -> Vec<ScenarioRow> {
    let stall = || {
        StreamOptions::new()
            .capacity(16)
            .inject_delay(Tier::Device, 1, Duration::from_millis(5))
    };
    let chain = "chain_cnn:4:8:16";
    let rows = [
        // Flash crowds: two trace steps quadruple the offered load; the
        // pipeline must absorb the burst losslessly within the p95 bound.
        (
            true,
            Scenario::new(
                "scenario_flash_crowd",
                chain,
                WorkloadGen::new(21)
                    .steps(6)
                    .load(4.0, 0.0)
                    .flash_crowds(2, 4.0),
                Envelope::p95(2.0),
            )
            .options(stall()),
        ),
        // Backbone collapse: a measured-style bandwidth trace (20%
        // jitter, mid-trace collapse to a quarter of the rate) replayed
        // live through `set_link_shaping`, no quiesce.
        (
            true,
            Scenario::new(
                "scenario_bandwidth_trace",
                chain,
                WorkloadGen::new(22)
                    .steps(6)
                    .load(4.0, 0.0)
                    .bandwidth(60.0, 24.0, 0.2)
                    .collapse(2, 2, 0.25),
                Envelope::p95(2.0),
            )
            .options(stall()),
        ),
        // Tenant churn: Bernoulli arrivals/departures; departures drain
        // before detach, so the run stays lossless per tenant.
        (
            true,
            Scenario::new(
                "scenario_tenant_churn",
                chain,
                WorkloadGen::new(23).steps(8).load(3.0, 0.0).churn(0.6, 0.3),
                Envelope::p95(2.0),
            )
            .options(stall()),
        ),
        // Diurnal multiplexing: sinusoidal load swing over a slowly
        // growing tenant population sharing one stage-pool set.
        (
            true,
            Scenario::new(
                "scenario_diurnal_multiplex",
                chain,
                WorkloadGen::new(24).steps(8).load(6.0, 0.5).churn(0.5, 0.2),
                Envelope::p95(2.0),
            )
            .options(stall()),
        ),
        // Energy budget: no injected stall (compute-bound, recorded
        // only); the envelope prices the deployed plan's device joules
        // against a battery budget.
        (
            false,
            Scenario::new(
                "scenario_energy_budget",
                chain,
                WorkloadGen::new(25).steps(4).load(4.0, 0.0),
                Envelope::p95(30.0).battery(1e3),
            )
            .options(StreamOptions::new().capacity(16)),
        ),
        // Transformer workload: residual/qkv fan-out DAG streamed
        // through the lossless codec end to end (compute-bound,
        // recorded only).
        (
            false,
            Scenario::new(
                "scenario_transformer_stream",
                "transformer:12:48:2:64",
                WorkloadGen::new(26).steps(4).load(4.0, 0.0),
                Envelope::p95(30.0),
            )
            .options(StreamOptions::new().capacity(16).codec(WireCodec::Lossless)),
        ),
    ];
    rows.into_iter()
        .map(|(gated, sc)| {
            let outcome = run_scenario(&sc);
            println!(
                "  {:<28} {}   {:>3} frames   p95 {:>8.2} ms   peak tenants {}{}",
                outcome.name,
                if outcome.passed() { "pass" } else { "FAIL" },
                outcome.delivered,
                outcome.worst_p95_s * 1e3,
                outcome.peak_tenants,
                if gated { "" } else { "   (recorded)" },
            );
            for v in &outcome.violations {
                println!("      violation: {v}");
            }
            ScenarioRow { gated, outcome }
        })
        .collect()
}

fn to_json(benches: &[Measurement], scenarios: &[ScenarioRow]) -> String {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let mut s = String::from("{\n");
    s.push_str("  \"schema\": \"d3-bench-streaming/v2\",\n");
    s.push_str(&format!("  \"host_cores\": {cores},\n"));
    s.push_str(&format!("  \"frames_per_run\": {FRAMES},\n"));
    s.push_str("  \"benches\": [\n");
    for (i, b) in benches.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"gated\": {}, \"throughput_fps\": {:.2}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}{}\n",
            b.name,
            b.gated(),
            b.throughput_fps,
            b.p50_ms,
            b.p99_ms,
            if i + 1 < benches.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"scenarios\": [\n");
    for (i, row) in scenarios.iter().enumerate() {
        let o = &row.outcome;
        let violations = o
            .violations
            .iter()
            .map(|v| format!("\"{}\"", v.replace('"', "'")))
            .collect::<Vec<_>>()
            .join(", ");
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"gated\": {}, \"passed\": {}, \
             \"submitted\": {}, \"delivered\": {}, \"drops\": {}, \
             \"worst_p95_ms\": {:.3}, \"throughput_fps\": {:.2}, \
             \"reconfigs\": {}, \"peak_tenants\": {}, \"device_j\": {:.4}, \
             \"violations\": [{}]}}{}\n",
            o.name,
            row.gated,
            o.passed(),
            o.submitted,
            o.delivered,
            o.drops,
            o.worst_p95_s * 1e3,
            o.throughput_fps,
            o.reconfigs,
            o.peak_tenants,
            o.device_j,
            violations,
            if i + 1 < scenarios.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Minimal extractor for the flat schema this binary writes: returns
/// `baseline[name].throughput_fps` when present.
fn baseline_throughput(json: &str, name: &str) -> Option<f64> {
    let needle = format!("\"name\": \"{name}\"");
    let at = json.find(&needle)?;
    let rest = &json[at..];
    let key = "\"throughput_fps\":";
    let k = rest.find(key)?;
    let tail = rest[k + key.len()..].trim_start();
    let end = tail
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut out_path = String::from("BENCH_streaming.json");
    let mut scenarios_path = String::from("BENCH_scenarios.json");
    let mut check_path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--scenarios-out" => {
                scenarios_path = args.next().expect("--scenarios-out needs a path");
            }
            "--check" => check_path = Some(args.next().expect("--check needs a path")),
            other => panic!("unknown argument {other:?}"),
        }
    }

    let benches = run_suite();
    println!("\nscenario matrix (seeded workload traces vs pass/fail envelopes):");
    let scenarios = run_scenario_matrix();
    std::fs::write(&out_path, to_json(&benches, &scenarios)).expect("write bench snapshot");
    // The per-scenario artifact CI uploads on its own: the full
    // snapshot minus the bench families.
    std::fs::write(&scenarios_path, to_json(&[], &scenarios)).expect("write scenario outcomes");
    println!("\nwrote {out_path} and {scenarios_path}");

    // The matrix gates on its envelopes, not on a baseline: a gated
    // (latency-bound) scenario leaving its envelope fails CI outright.
    let envelope_failures: Vec<&ScenarioRow> = scenarios
        .iter()
        .filter(|row| row.gated && !row.outcome.passed())
        .collect();
    if !envelope_failures.is_empty() {
        eprintln!("\nperf-gate FAILED — scenario envelopes violated:");
        for row in &envelope_failures {
            for v in &row.outcome.violations {
                eprintln!("  {}: {v}", row.outcome.name);
            }
        }
        std::process::exit(1);
    }

    let Some(check_path) = check_path else {
        return;
    };
    let baseline = std::fs::read_to_string(&check_path)
        .unwrap_or_else(|e| panic!("read baseline {check_path}: {e}"));
    let mut regressions = Vec::new();
    let mut gated = 0usize;
    for b in &benches {
        let Some(base) = baseline_throughput(&baseline, b.name) else {
            println!(
                "perf-gate: {} not in baseline (new scenario, skipped)",
                b.name
            );
            continue;
        };
        let ratio = b.throughput_fps / base;
        if !b.gated() {
            println!(
                "perf-gate: {} informational ({:.1} fps, {:.2}x of baseline {:.1})",
                b.name, b.throughput_fps, ratio, base
            );
            continue;
        }
        gated += 1;
        let floor = base * (1.0 - TOLERANCE);
        if b.throughput_fps < floor {
            regressions.push(format!(
                "{}: {:.1} fps < floor {:.1} fps (baseline {:.1})",
                b.name, b.throughput_fps, floor, base
            ));
        } else {
            println!(
                "perf-gate: {} ok ({:.1} fps vs baseline {:.1}, floor {:.1})",
                b.name, b.throughput_fps, base, floor
            );
        }
    }
    if !regressions.is_empty() {
        eprintln!("\nperf-gate FAILED — throughput regressed >30%:");
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }
    println!("perf-gate passed ({gated} gated scenarios)");
}
