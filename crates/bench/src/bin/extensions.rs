//! Prints the extension studies (IONN, MoDNN, energy, heterogeneous VSM).
use d3_bench::extensions;

fn main() {
    println!("{}", extensions::extension_ionn().render());
    println!("{}", extensions::extension_modnn().render());
    println!("{}", extensions::extension_energy().render());
    println!("{}", extensions::extension_hetero_vsm().render());
}
