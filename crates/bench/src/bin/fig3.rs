//! Regenerates Fig. 3: the Inception-v4 grid module's DAG layering.
fn main() {
    println!("{}", d3_bench::figures::fig3().render());
}
