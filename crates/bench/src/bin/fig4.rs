//! Regenerates Fig. 4: regression predicted vs actual layer latency.
fn main() {
    println!("{}", d3_bench::figures::fig4().render());
}
