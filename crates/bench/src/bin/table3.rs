//! Regenerates Table III: inter-tier uplink rates.
fn main() {
    println!("{}", d3_bench::tables::table3().render());
}
