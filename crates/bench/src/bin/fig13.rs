//! Regenerates Fig. 13: per-image backbone communication overhead.
fn main() {
    println!("{}", d3_bench::figures::fig13().render());
}
