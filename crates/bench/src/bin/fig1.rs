//! Regenerates Fig. 1: per-layer latency and output size on an RPi4.
fn main() {
    println!("{}", d3_bench::figures::fig1().render());
}
