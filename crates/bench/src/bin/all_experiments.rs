//! Runs every table/figure reproduction and prints the full report
//! (the source of EXPERIMENTS.md's measured columns).
fn main() {
    println!("# D3 reproduction — experiment report\n");
    for section in d3_bench::all_sections() {
        println!("{}", section.render());
    }
}
