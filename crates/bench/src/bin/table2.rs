//! Regenerates Table II: post-HPA per-tier processing times.
fn main() {
    println!("{}", d3_bench::tables::table2().render());
}
