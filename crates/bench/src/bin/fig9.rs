//! Regenerates Fig. 9: HPA vs single-tier strategies.
fn main() {
    println!("{}", d3_bench::figures::fig9().render());
}
