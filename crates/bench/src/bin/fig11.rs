//! Regenerates Fig. 11: Inception-v4 speedup vs backbone bandwidth.
fn main() {
    println!("{}", d3_bench::figures::fig11().render());
}
