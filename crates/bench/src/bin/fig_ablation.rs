//! Prints all ablation studies (HPA components, tiers, tile grids,
//! dynamic updates).
use d3_bench::ablations;

fn main() {
    println!("{}", ablations::ablation_hpa_components().render());
    println!("{}", ablations::ablation_tiers().render());
    println!("{}", ablations::ablation_tile_grid().render());
    println!("{}", ablations::ablation_dynamic().render());
}
