//! Ablation studies: design choices the paper asserts but does not
//! isolate (see DESIGN.md's ablation table).

use crate::report::{fmt_s, fmt_x, md_table, Section};
use d3_model::zoo;
use d3_partition::{repartition_local, Hpa, HpaOptions, Partitioner, Problem};
use d3_simnet::{NetworkCondition, Tier, TierProfiles};
use d3_vsm::{parallel_time, VsmPlan};

fn problem(g: &d3_model::DnnGraph, net: NetworkCondition) -> Problem {
    Problem::new(g, &TierProfiles::paper_testbed(), net)
}

/// HPA component ablation: full HPA vs no-SIS vs no-I/O-look-ahead vs
/// pure greedy (no depth-cut search), Θ per model under Wi-Fi.
pub fn ablation_hpa_components() -> Section {
    let variants: Vec<(&str, HpaOptions)> = vec![
        ("full", HpaOptions::paper()),
        ("no SIS", HpaOptions::paper().without_sis()),
        (
            "no I/O look-ahead",
            HpaOptions::paper().without_io_heuristic(),
        ),
        (
            "greedy only (no cut search)",
            HpaOptions::paper().without_cut_search(),
        ),
    ];
    let mut rows = Vec::new();
    for g in zoo::all_models(zoo::IMAGENET_HW) {
        let p = problem(&g, NetworkCondition::WiFi);
        let mut row = vec![zoo::display_name(g.name()).to_string()];
        for (_, opts) in &variants {
            let theta = Hpa(opts.clone())
                .partition(&p)
                .expect("HPA always applies")
                .total_latency(&p);
            row.push(fmt_s(theta));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("model")
        .chain(variants.iter().map(|(n, _)| *n))
        .collect();
    Section::new(
        "Ablation — HPA components (Θ under Wi-Fi; lower is better)",
        md_table(&headers, &rows),
    )
}

/// Tier ablation: 3-tier HPA vs 2-tier restrictions (device+cloud à la
/// Neurosurgeon; edge+cloud à la DADS).
pub fn ablation_tiers() -> Section {
    let mut rows = Vec::new();
    for g in zoo::all_models(zoo::IMAGENET_HW) {
        let p = problem(&g, NetworkCondition::WiFi);
        let theta = |tiers: &[Tier]| {
            let opts = HpaOptions::paper().with_tiers(tiers);
            Hpa(opts)
                .partition(&p)
                .expect("HPA always applies")
                .total_latency(&p)
        };
        let three = theta(&Tier::ALL);
        let dc = theta(&[Tier::Device, Tier::Cloud]);
        let ec = theta(&[Tier::Edge, Tier::Cloud]);
        rows.push(vec![
            zoo::display_name(g.name()).to_string(),
            fmt_s(three),
            format!("{} ({})", fmt_s(dc), fmt_x(dc / three)),
            format!("{} ({})", fmt_s(ec), fmt_x(ec / three)),
        ]);
    }
    Section::new(
        "Ablation — 3-tier vs 2-tier partitioning (Wi-Fi; ratios vs 3-tier)",
        md_table(&["model", "3-tier", "device+cloud", "edge+cloud"], &rows),
    )
}

/// Tile-grid ablation: redundancy and ideal speedup per grid on VGG-16's
/// conv1–4 run (the paper fixes 2×2; this sweeps 1×1..4×4).
pub fn ablation_tile_grid() -> Section {
    let g = zoo::vgg16(224);
    // conv1(1), conv2(2) form the pre-pool run; use conv stack up to pool1.
    let run: Vec<d3_model::NodeId> = vec![d3_model::NodeId(1), d3_model::NodeId(2)];
    let p = problem(&g, NetworkCondition::WiFi);
    let full: Vec<f64> = run
        .iter()
        .map(|&id| p.vertex_time(id, Tier::Edge))
        .collect();
    let mut rows = Vec::new();
    for (rows_n, cols_n) in [(1, 1), (1, 2), (2, 2), (2, 3), (3, 3), (4, 4)] {
        let plan = VsmPlan::new(&g, &run, rows_n, cols_n).expect("plannable");
        let serial: f64 = full.iter().sum();
        let par = parallel_time(&plan, &full, rows_n * cols_n);
        rows.push(vec![
            format!("{rows_n}×{cols_n}"),
            format!("{:.3}", plan.redundancy()),
            format!("{:.3}", plan.input_redundancy()),
            fmt_x(serial / par),
        ]);
    }
    Section::new(
        "Ablation — VSM tile grid on VGG-16 conv1–conv2 (one node per tile)",
        md_table(
            &["grid", "compute redundancy", "input redundancy", "speedup"],
            &rows,
        ),
    )
}

/// Dynamic-update ablation: Θ and work of local re-partition vs a full
/// HPA re-run after a 5× slowdown of each mid-network vertex.
pub fn ablation_dynamic() -> Section {
    let mut rows = Vec::new();
    for g in zoo::all_models(zoo::IMAGENET_HW) {
        let opts = HpaOptions::paper();
        let mut p = problem(&g, NetworkCondition::WiFi);
        let base = Hpa(opts.clone()).partition(&p).expect("HPA always applies");
        let victim = d3_model::NodeId(g.len() / 2);
        p.scale_vertex(victim, base.tier(victim), 5.0);
        let stale = base.total_latency(&p);
        let local = repartition_local(&p, &base, victim, &opts);
        let local_theta = local.assignment.total_latency(&p);
        let full_theta = Hpa(opts.clone())
            .partition(&p)
            .expect("HPA always applies")
            .total_latency(&p);
        rows.push(vec![
            zoo::display_name(g.name()).to_string(),
            fmt_s(stale),
            format!(
                "{} ({} vertices touched)",
                fmt_s(local_theta),
                local.recomputed.len()
            ),
            format!("{} ({} vertices)", fmt_s(full_theta), g.len() - 1),
        ]);
    }
    Section::new(
        "Ablation — stale plan vs local re-partition vs full HPA after 5× vertex slowdown",
        md_table(
            &["model", "stale Θ", "local update Θ", "full re-run Θ"],
            &rows,
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_sections_render() {
        let s = ablation_tile_grid();
        assert!(s.render().contains("redundancy"));
    }

    #[test]
    fn cut_search_never_hurts() {
        for g in [zoo::vgg16(224), zoo::resnet18(224)] {
            let p = problem(&g, NetworkCondition::WiFi);
            let full = Hpa(HpaOptions::paper())
                .partition(&p)
                .unwrap()
                .total_latency(&p);
            let greedy = Hpa(HpaOptions::paper().without_cut_search())
                .partition(&p)
                .unwrap()
                .total_latency(&p);
            assert!(full <= greedy + 1e-12, "{}", g.name());
        }
    }

    #[test]
    fn three_tier_never_worse_than_two_tier() {
        let g = zoo::resnet18(224);
        let p = problem(&g, NetworkCondition::WiFi);
        let three = Hpa(HpaOptions::paper())
            .partition(&p)
            .unwrap()
            .total_latency(&p);
        for tiers in [[Tier::Device, Tier::Cloud], [Tier::Edge, Tier::Cloud]] {
            let two = Hpa(HpaOptions::paper().with_tiers(&tiers))
                .partition(&p)
                .unwrap()
                .total_latency(&p);
            assert!(three <= two + 1e-9);
        }
    }
}
