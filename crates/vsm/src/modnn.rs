//! MoDNN baseline (Mao et al., DATE 2017): layer-wise feature-map
//! parallelism with per-layer gather/re-partition.
//!
//! MoDNN splits *each convolutional layer independently* across worker
//! nodes; after every layer a host gathers the partial outputs and
//! re-partitions them for the next layer. The paper under reproduction
//! dismisses this because the per-layer synchronization "results in
//! significant communication overhead" — the exact overhead fused tiles
//! (DeepThings/VSM) eliminate. This module provides MoDNN's latency model
//! so the claim can be quantified instead of merely asserted.
//!
//! MoDNN has no receptive-field redundancy (each layer is split exactly),
//! but pays `2 × bytes / lan_bandwidth` around every layer (gather +
//! scatter, minus the fraction the host keeps locally).

use crate::fused::VsmPlan;
use d3_model::{DnnGraph, NodeId};

/// Latency model parameters for MoDNN-style execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModnnConfig {
    /// Number of worker nodes (the host is one of them).
    pub nodes: usize,
    /// LAN bandwidth between workers, Mbit/s (MoDNN runs over Wi-Fi).
    pub lan_mbps: f64,
}

/// Wall-clock seconds of executing a layer run MoDNN-style: every layer's
/// compute divides by the node count (perfect split, no halo redundancy),
/// but each layer boundary moves `(nodes-1)/nodes` of the feature map to
/// the host and back over the LAN.
///
/// # Panics
///
/// Panics when `full_layer_times` does not match `run`, `nodes == 0`, or
/// the bandwidth is non-positive.
pub fn modnn_time(
    graph: &DnnGraph,
    run: &[NodeId],
    full_layer_times: &[f64],
    cfg: ModnnConfig,
) -> f64 {
    assert_eq!(full_layer_times.len(), run.len(), "one latency per layer");
    assert!(cfg.nodes >= 1, "need at least one node");
    assert!(cfg.lan_mbps > 0.0, "LAN bandwidth must be positive");
    let remote_frac = (cfg.nodes - 1) as f64 / cfg.nodes as f64;
    let mut total = 0.0;
    for (&id, &t) in run.iter().zip(full_layer_times) {
        total += t / cfg.nodes as f64;
        // Gather partial outputs to the host, then scatter the next
        // layer's inputs back out — both move the remote workers' share.
        let bytes = graph.node(id).output_bytes() as f64;
        let move_s = bytes * remote_frac * 8.0 / (cfg.lan_mbps * 1e6);
        total += 2.0 * move_s;
    }
    total
}

/// Head-to-head of the three parallelization schemes on one run:
/// `(serial, modnn, vsm)` wall-clock seconds. VSM pays overlap redundancy
/// but zero synchronization; MoDNN pays synchronization but zero
/// redundancy.
pub fn compare_schemes(
    graph: &DnnGraph,
    run: &[NodeId],
    full_layer_times: &[f64],
    cfg: ModnnConfig,
    grid: (usize, usize),
) -> Option<(f64, f64, f64)> {
    let serial: f64 = full_layer_times.iter().sum();
    let modnn = modnn_time(graph, run, full_layer_times, cfg);
    let plan = VsmPlan::new(graph, run, grid.0, grid.1).ok()?;
    let vsm = crate::latency::parallel_time(&plan, full_layer_times, cfg.nodes);
    Some((serial, modnn, vsm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_model::zoo;

    fn cfg(nodes: usize) -> ModnnConfig {
        ModnnConfig {
            nodes,
            lan_mbps: 84.95, // the paper's Wi-Fi LAN
        }
    }

    #[test]
    fn single_node_modnn_is_serial() {
        let g = zoo::chain_cnn(3, 8, 32);
        let run: Vec<NodeId> = (1..=3).map(NodeId).collect();
        let times = vec![0.1, 0.2, 0.3];
        let t = modnn_time(&g, &run, &times, cfg(1));
        assert!((t - 0.6).abs() < 1e-12, "no comms with one node, got {t}");
    }

    #[test]
    fn modnn_pays_per_layer_communication() {
        let g = zoo::chain_cnn(2, 8, 32);
        let run: Vec<NodeId> = (1..=2).map(NodeId).collect();
        let times = vec![0.01, 0.01];
        let t2 = modnn_time(&g, &run, &times, cfg(2));
        // Compute halves but communication appears.
        let compute = 0.02 / 2.0;
        assert!(t2 > compute, "communication term missing");
    }

    #[test]
    fn vsm_beats_modnn_on_communication_bound_runs() {
        // The paper's §II claim, quantified: for cheap layers with big
        // feature maps over Wi-Fi, MoDNN's gather/scatter dominates and
        // fused tiles win despite their halo redundancy.
        let g = zoo::chain_cnn(3, 8, 64);
        let run: Vec<NodeId> = (1..=3).map(NodeId).collect();
        let times = vec![0.01, 0.01, 0.01]; // 10 ms/layer
        let (serial, modnn, vsm) = compare_schemes(&g, &run, &times, cfg(4), (2, 2)).unwrap();
        assert!(vsm < serial, "VSM should parallelize");
        assert!(
            vsm < modnn,
            "VSM {vsm:.4}s should beat MoDNN {modnn:.4}s (serial {serial:.4}s)"
        );
    }

    #[test]
    fn modnn_can_win_when_compute_dominates_and_maps_are_tiny() {
        // Fairness check: with huge per-layer compute and tiny feature
        // maps, MoDNN's exact split (no redundancy) can edge out VSM.
        let g = zoo::chain_cnn(2, 8, 8); // 8×8 maps: tiny transfers
        let run: Vec<NodeId> = (1..=2).map(NodeId).collect();
        let times = vec![10.0, 10.0]; // absurdly heavy layers
        let (_, modnn, vsm) = compare_schemes(&g, &run, &times, cfg(4), (2, 2)).unwrap();
        assert!(modnn < vsm, "MoDNN {modnn} vs VSM {vsm}");
    }

    #[test]
    fn scaling_has_a_communication_floor() {
        // Compute shrinks with nodes but the gather/scatter term
        // saturates: returns diminish and latency never drops below the
        // full-feature-map round trips.
        let g = zoo::chain_cnn(2, 8, 64);
        let run: Vec<NodeId> = (1..=2).map(NodeId).collect();
        let times = vec![0.05, 0.05];
        let t2 = modnn_time(&g, &run, &times, cfg(2));
        let t4 = modnn_time(&g, &run, &times, cfg(4));
        let t64 = modnn_time(&g, &run, &times, cfg(64));
        assert!(t4 < t2, "4 nodes should beat 2 here");
        assert!(t2 - t4 > t4 - t64, "returns must diminish");
        let floor: f64 = run
            .iter()
            .map(|&id| 2.0 * g.node(id).output_bytes() as f64 * 8.0 / (84.95e6))
            .sum::<f64>()
            * (63.0 / 64.0);
        assert!(t64 > floor, "t64 {t64} below comm floor {floor}");
    }
}
