//! VSM latency model: what parallel tiled execution costs on a pool of
//! edge nodes.
//!
//! Work per tile and layer scales with the tile's *output area* at that
//! layer (every output entry costs the same convolution window). Because
//! fused tiles overlap spatially, total tiled work exceeds whole-tensor
//! work ([`VsmPlan::redundancy`]) — which is exactly why the paper's
//! Fig. 12 shows the 4-node VSM speedup staying below 4×. Intra-tier
//! transmission (scatter/gather over the LAN) is taken as negligible per
//! the paper's §III-A assumption.

use crate::fused::VsmPlan;

/// Wall-clock seconds of executing `plan` on `nodes` identical edge
/// nodes, given the *whole-layer* latencies of the run's layers on one
/// such node. Tiles are assigned round-robin (`tile i → node i mod
/// nodes`, the paper's one-tile-per-node deployment when counts match);
/// the result is the busiest node's total.
///
/// # Panics
///
/// Panics when `full_layer_times` does not match the plan's layer count
/// or `nodes == 0`.
pub fn parallel_time(plan: &VsmPlan, full_layer_times: &[f64], nodes: usize) -> f64 {
    assert_eq!(
        full_layer_times.len(),
        plan.layers.len(),
        "one latency per run layer"
    );
    assert!(nodes >= 1, "need at least one edge node");
    let mut node_time = vec![0.0f64; nodes];
    for (t_idx, tile) in plan.tiles.iter().enumerate() {
        let mut cost = 0.0;
        for (i, &full) in full_layer_times.iter().enumerate() {
            let (h, w) = plan.planes[i + 1];
            let frac = tile.regions[i + 1].area() as f64 / (h * w) as f64;
            cost += full * frac;
        }
        node_time[t_idx % nodes] += cost;
    }
    node_time.into_iter().fold(0.0, f64::max)
}

/// The speedup of tiled execution over single-node execution of the same
/// run: `Σ full_layer_times / parallel_time`.
pub fn speedup(plan: &VsmPlan, full_layer_times: &[f64], nodes: usize) -> f64 {
    let serial: f64 = full_layer_times.iter().sum();
    if serial == 0.0 {
        return 1.0;
    }
    serial / parallel_time(plan, full_layer_times, nodes)
}

/// Wall-clock seconds on a *heterogeneous* pool: tile `i` runs on node
/// `i`, whose relative speed is `node_speeds[i]` (1.0 = the node the
/// `full_layer_times` were measured on). Pair with
/// [`VsmPlan::weighted`][crate::VsmPlan::weighted] so tile areas match
/// node speeds.
///
/// # Panics
///
/// Panics when the node count differs from the tile count or a speed is
/// non-positive.
pub fn parallel_time_weighted(
    plan: &VsmPlan,
    full_layer_times: &[f64],
    node_speeds: &[f64],
) -> f64 {
    assert_eq!(
        node_speeds.len(),
        plan.tiles.len(),
        "one node per tile for weighted pools"
    );
    assert!(
        node_speeds.iter().all(|&s| s > 0.0),
        "node speeds must be positive"
    );
    let mut worst = 0.0f64;
    for (tile, &speed) in plan.tiles.iter().zip(node_speeds) {
        let mut cost = 0.0;
        for (i, &full) in full_layer_times.iter().enumerate() {
            let (h, w) = plan.planes[i + 1];
            let frac = tile.regions[i + 1].area() as f64 / (h * w) as f64;
            cost += full * frac;
        }
        worst = worst.max(cost / speed);
    }
    worst
}

/// Picks the uniform grid (rows × cols ≤ `nodes`, both ≤ 8) minimizing
/// [`parallel_time`] for a run — the tile-decision search the paper
/// leaves implicit ("Decision of separation: A × B tiles", Algorithm 2).
/// Returns the chosen grid and its parallel time.
pub fn best_uniform_grid(
    graph: &d3_model::DnnGraph,
    run: &[d3_model::NodeId],
    full_layer_times: &[f64],
    nodes: usize,
) -> Option<((usize, usize), f64)> {
    let mut best: Option<((usize, usize), f64)> = None;
    for rows in 1..=nodes.min(8) {
        for cols in 1..=nodes.min(8) {
            if rows * cols > nodes {
                continue;
            }
            let Ok(plan) = VsmPlan::new(graph, run, rows, cols) else {
                continue;
            };
            let t = parallel_time(&plan, full_layer_times, rows * cols);
            let better = match best {
                None => true,
                Some((_, bt)) => t < bt - 1e-15,
            };
            if better {
                best = Some(((rows, cols), t));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_model::zoo;
    use d3_model::NodeId;

    fn plan(hw: usize, rows: usize, cols: usize) -> VsmPlan {
        let g = zoo::chain_cnn(3, 8, hw);
        VsmPlan::new(&g, &[NodeId(1), NodeId(2), NodeId(3)], rows, cols).unwrap()
    }

    #[test]
    fn single_tile_single_node_is_serial() {
        let p = plan(16, 1, 1);
        let times = vec![0.1, 0.2, 0.3];
        assert!((parallel_time(&p, &times, 1) - 0.6).abs() < 1e-12);
        assert!((speedup(&p, &times, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn four_tiles_on_four_nodes_speedup_below_4x() {
        // The paper's Fig. 12 observation: overlap redundancy keeps the
        // speedup strictly below the node count.
        let p = plan(32, 2, 2);
        let times = vec![0.1, 0.1, 0.1];
        let s = speedup(&p, &times, 4);
        assert!(s > 1.5 && s < 4.0, "speedup {s}");
    }

    #[test]
    fn more_nodes_never_slower() {
        let p = plan(32, 2, 2);
        let times = vec![0.05, 0.2, 0.1];
        let t1 = parallel_time(&p, &times, 1);
        let t2 = parallel_time(&p, &times, 2);
        let t4 = parallel_time(&p, &times, 4);
        assert!(t2 <= t1 + 1e-12);
        assert!(t4 <= t2 + 1e-12);
    }

    #[test]
    fn one_node_pays_full_redundancy() {
        // On a single node, tiled execution costs redundancy × serial.
        let p = plan(32, 2, 2);
        let times = vec![1.0, 1.0, 1.0];
        let serial: f64 = times.iter().sum();
        let tiled = parallel_time(&p, &times, 1);
        assert!(
            (tiled / serial - p.redundancy()).abs() < 0.05,
            "tiled {tiled} serial {serial} redundancy {}",
            p.redundancy()
        );
    }

    #[test]
    #[should_panic(expected = "one latency per run layer")]
    fn mismatched_latencies_panic() {
        let p = plan(16, 2, 2);
        parallel_time(&p, &[0.1], 2);
    }

    #[test]
    fn weighted_plan_balances_heterogeneous_pool() {
        // One node 3× faster than the other: a matching 3:1 weighted plan
        // must beat the uniform split on the same pool.
        let g = zoo::chain_cnn(3, 8, 32);
        let run = vec![NodeId(1), NodeId(2), NodeId(3)];
        let times = vec![0.1, 0.1, 0.1];
        let speeds = vec![3.0, 1.0];
        let uniform = VsmPlan::new(&g, &run, 2, 1).unwrap();
        let weighted = VsmPlan::weighted(&g, &run, &[3.0, 1.0], &[1.0]).unwrap();
        let tu = parallel_time_weighted(&uniform, &times, &speeds);
        let tw = parallel_time_weighted(&weighted, &times, &speeds);
        assert!(tw < tu, "weighted {tw} should beat uniform {tu}");
    }

    #[test]
    fn best_uniform_grid_uses_the_budget() {
        let g = zoo::chain_cnn(3, 8, 32);
        let run = vec![NodeId(1), NodeId(2), NodeId(3)];
        let times = vec![0.1, 0.1, 0.1];
        let ((rows, cols), t4) = best_uniform_grid(&g, &run, &times, 4).unwrap();
        assert!(rows * cols > 1, "should exploit parallelism");
        let ((_, _), t9) = best_uniform_grid(&g, &run, &times, 9).unwrap();
        assert!(t9 <= t4 + 1e-12, "more nodes never hurt the search");
        let serial: f64 = times.iter().sum();
        assert!(t4 < serial);
    }

    #[test]
    fn best_grid_beats_fixed_2x2_sometimes() {
        // With 6 nodes, 2×3 should beat the paper's fixed 2×2.
        let g = zoo::chain_cnn(2, 8, 48);
        let run = vec![NodeId(1), NodeId(2)];
        let times = vec![0.2, 0.2];
        let fixed = parallel_time(&VsmPlan::new(&g, &run, 2, 2).unwrap(), &times, 6);
        let ((_, _), best) = best_uniform_grid(&g, &run, &times, 6).unwrap();
        assert!(best <= fixed + 1e-12);
    }
}
