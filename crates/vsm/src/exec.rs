//! Fused-tile execution: the compute side of VSM.
//!
//! Each fused tile runs independently — on its own thread, standing in
//! for the paper's independent edge nodes — consuming only its input crop
//! and producing its disjoint output tile. The merged result is
//! bit-identical to whole-tensor inference because the region operators
//! apply padding only at global borders and accumulate in the same order
//! (the paper's "lossless" claim, verified by tests and property tests).

use crate::fused::{find_tileable_runs, VsmPlan};
use crate::grid::clamp_grid;
use d3_model::{Executor, LayerOp, NodeId};
use d3_tensor::{ops::leaky_relu, ops::relu, Patch, Region, Tensor};
use std::collections::{HashMap, HashSet};

/// Executes one [`VsmPlan`] with materialized weights.
pub struct TileExecutor {
    ops: Vec<LayerOp>,
    plan: VsmPlan,
    out_channels: usize,
}

impl TileExecutor {
    /// Materializes the run's operators from the model executor.
    ///
    /// # Panics
    ///
    /// Panics if the plan contains a vertex kind the tile path cannot
    /// execute (guarded earlier by [`VsmPlan::new`]).
    pub fn new(executor: &Executor<'_>, plan: VsmPlan) -> Self {
        let ops: Vec<LayerOp> = plan
            .layers
            .iter()
            .map(|&id| executor.build_op(id))
            .collect();
        for op in &ops {
            assert!(
                matches!(
                    op,
                    LayerOp::Conv { .. }
                        | LayerOp::Depthwise { .. }
                        | LayerOp::Pool(_)
                        | LayerOp::Activation(_)
                ),
                "non-tileable op reached the tile executor"
            );
        }
        let out_channels = executor
            .graph()
            .node(*plan.layers.last().expect("non-empty plan"))
            .shape
            .c;
        Self {
            ops,
            plan,
            out_channels,
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &VsmPlan {
        &self.plan
    }

    /// Runs one fused tile: crops the input, walks the layer stack on
    /// patches, returns the tile's (output region, output tensor).
    pub fn run_tile(&self, input: &Tensor, idx: usize) -> (Region, Tensor) {
        let tile = &self.plan.tiles[idx];
        let mut patch = Patch::from_global(input, tile.input_region());
        for (i, op) in self.ops.iter().enumerate() {
            let global_in = self.plan.planes[i];
            let out_region = tile.regions[i + 1];
            patch = apply_tiled(op, &patch, out_region, global_in);
        }
        (tile.output_region(), patch.into_tensor())
    }

    /// Sequential tiled execution: every tile in order, merged.
    pub fn run_sequential(&self, input: &Tensor) -> Tensor {
        let mut out = self.blank_output();
        for idx in 0..self.plan.tiles.len() {
            let (region, tensor) = self.run_tile(input, idx);
            out.paste(&tensor, region.y0, region.x0);
        }
        out
    }

    /// Parallel tiled execution: one thread per fused tile (the paper's
    /// one-tile-per-edge-node deployment), merged after a join.
    pub fn run_parallel(&self, input: &Tensor) -> Tensor {
        let n = self.plan.tiles.len();
        let mut results: Vec<Option<(Region, Tensor)>> = (0..n).map(|_| None).collect();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for idx in 0..n {
                handles.push(scope.spawn(move |_| self.run_tile(input, idx)));
            }
            for (idx, h) in handles.into_iter().enumerate() {
                results[idx] = Some(h.join().expect("tile thread panicked"));
            }
        })
        .expect("tile scope panicked");
        let mut out = self.blank_output();
        for r in results.into_iter().flatten() {
            out.paste(&r.1, r.0.y0, r.0.x0);
        }
        out
    }

    /// Reference whole-tensor execution through the same operators.
    pub fn run_whole(&self, input: &Tensor) -> Tensor {
        let mut cur = input.clone();
        for op in &self.ops {
            cur = op.apply(&[&cur]);
        }
        cur
    }

    fn blank_output(&self) -> Tensor {
        let (h, w) = *self.plan.planes.last().expect("non-empty planes");
        Tensor::zeros(self.out_channels, h, w)
    }
}

/// One tileable run of a segment, prepared for execution.
struct PreparedTileRun {
    /// The vertex feeding the run (outside or upstream of it).
    input_node: NodeId,
    /// The run's final vertex — the only member whose value materializes
    /// when the run executes tiled.
    last: NodeId,
    /// The run's members in chain order.
    members: Vec<NodeId>,
    /// Prebuilt tile executor; `None` means [`VsmPlan::new`] rejected the
    /// run and it executes serially through the caller's operators.
    tiles: Option<TileExecutor>,
}

/// The shared tile-run execution rules of a segment: grid clamping,
/// plan-rejection serial fallback, and interior-member skipping.
///
/// Both engine execution paths — per-frame distributed execution and the
/// resident streaming edge stage — historically carried near-copies of
/// these rules; `TiledRuns` is their single home. [`TiledRuns::prepare`]
/// finds the segment's tileable runs, clamps the requested grid to each
/// run's output plane ([`clamp_grid`]), and prebuilds a [`TileExecutor`]
/// per plannable run. [`TiledRuns::execute`] is then used as the hook of
/// [`d3_model::walk_segment`]: it runs a whole tiled run when the walker
/// reaches the run's head (falling back to serial execution through the
/// caller's `apply` when the plan was rejected) and skips run interiors,
/// which never materialize under tiling.
pub struct TiledRuns {
    /// Prepared runs keyed by their head vertex.
    runs: HashMap<NodeId, PreparedTileRun>,
    /// Non-head run members: produced (or skipped) when their head runs.
    interior: HashSet<NodeId>,
    /// Members of successfully planned (tiled) runs; their per-vertex
    /// operators are never applied individually.
    tiled: HashSet<NodeId>,
}

impl TiledRuns {
    /// Finds the tileable runs of `members` (a tier's segment) and
    /// prebuilds a tile executor for each plannable one, with weights
    /// from `exec`. `grid` is the requested `(rows, cols)` tile grid —
    /// clamped per run to its output plane — and runs shorter than
    /// `min_run_len` are left serial.
    #[must_use]
    pub fn prepare(
        exec: &Executor<'_>,
        members: &[NodeId],
        grid: (usize, usize),
        min_run_len: usize,
    ) -> Self {
        let graph = exec.graph();
        let mut runs = HashMap::new();
        let mut interior = HashSet::new();
        let mut tiled = HashSet::new();
        for run in find_tileable_runs(graph, members, min_run_len) {
            let head = run[0];
            let last = *run.last().expect("non-empty run");
            let input_node = graph.node(head).preds[0];
            let out_shape = graph.node(last).shape;
            let (rows, cols) = clamp_grid(grid, (out_shape.h, out_shape.w));
            let tiles = VsmPlan::new(graph, &run, rows, cols)
                .ok()
                .map(|plan| TileExecutor::new(exec, plan));
            interior.extend(run.iter().skip(1).copied());
            if tiles.is_some() {
                tiled.extend(run.iter().copied());
            }
            runs.insert(
                head,
                PreparedTileRun {
                    input_node,
                    last,
                    members: run,
                    tiles,
                },
            );
        }
        Self {
            runs,
            interior,
            tiled,
        }
    }

    /// Whether no tileable run was found (callers then skip the tiled
    /// path entirely).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Whether `id` belongs to a successfully planned (tiled) run —
    /// prebuilding executors skip materializing such members' operators.
    #[must_use]
    pub fn is_tiled(&self, id: NodeId) -> bool {
        self.tiled.contains(&id)
    }

    /// The segment-walk hook: handles `id` when it heads or sits inside
    /// a prepared run. A plannable run executes tile-parallel through its
    /// prebuilt [`TileExecutor`]; a rejected run falls back to serial
    /// execution through `apply` (the caller's per-vertex operators).
    /// Returns `false` when `id` is an ordinary member the walker should
    /// execute itself.
    ///
    /// # Panics
    ///
    /// Panics when the run's input tensor is missing from `values`.
    pub fn execute<A>(&self, id: NodeId, values: &mut HashMap<NodeId, Tensor>, mut apply: A) -> bool
    where
        A: FnMut(NodeId, &[&Tensor]) -> Tensor,
    {
        if let Some(prepared) = self.runs.get(&id) {
            let input = values
                .get(&prepared.input_node)
                .unwrap_or_else(|| panic!("run input {} missing", prepared.input_node))
                .clone();
            match &prepared.tiles {
                Some(tex) => {
                    values.insert(prepared.last, tex.run_parallel(&input));
                }
                None => {
                    // Un-plannable run: serial through the caller's ops.
                    let mut cur = input;
                    for &rid in &prepared.members {
                        cur = apply(rid, &[&cur]);
                        values.insert(rid, cur.clone());
                    }
                }
            }
            return true;
        }
        self.interior.contains(&id) // tiled-run interior: never materialized
    }
}

/// Applies one operator to a patch, producing exactly `out_region` of the
/// operator's global output plane.
fn apply_tiled(
    op: &LayerOp,
    patch: &Patch,
    out_region: Region,
    global_in: (usize, usize),
) -> Patch {
    match op {
        LayerOp::Conv {
            conv,
            bn,
            activation,
        } => {
            let mut out = conv.forward_patch(patch, out_region, global_in);
            let region = out.region();
            let global = out.global_size();
            let mut t = out.into_tensor();
            if let Some(bn) = bn {
                t = bn.forward(&t);
            }
            t = apply_act(&t, *activation);
            out = Patch::from_parts(t, region.y0, region.x0, global);
            out
        }
        LayerOp::Depthwise {
            conv,
            bn,
            activation,
        } => {
            let out = conv.forward_patch(patch, out_region, global_in);
            let region = out.region();
            let global = out.global_size();
            let mut t = out.into_tensor();
            if let Some(bn) = bn {
                t = bn.forward(&t);
            }
            t = apply_act(&t, *activation);
            Patch::from_parts(t, region.y0, region.x0, global)
        }
        LayerOp::Pool(p) => p.forward_patch(patch, out_region, global_in),
        LayerOp::Activation(a) => {
            let region = patch.region();
            debug_assert_eq!(region, out_region, "activation is spatially identity");
            let t = apply_act(patch.tensor(), *a);
            Patch::from_parts(t, region.y0, region.x0, patch.global_size())
        }
        other => unreachable!("non-tileable op {other:?} in tile path"),
    }
}

fn apply_act(t: &Tensor, a: d3_model::Activation) -> Tensor {
    match a {
        d3_model::Activation::None => t.clone(),
        d3_model::Activation::Relu => relu(t),
        d3_model::Activation::Leaky(alpha) => leaky_relu(t, alpha),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_model::zoo;
    use d3_model::NodeId;
    use d3_tensor::max_abs_diff;

    fn check_lossless(g: &d3_model::DnnGraph, run: &[NodeId], rows: usize, cols: usize, seed: u64) {
        let exec = Executor::new(g, seed);
        let plan = VsmPlan::new(g, run, rows, cols).unwrap();
        let tex = TileExecutor::new(&exec, plan);
        let in_shape = g.node(g.node(run[0]).preds[0]).shape;
        let input = Tensor::random(in_shape.c, in_shape.h, in_shape.w, seed ^ 99);
        let whole = tex.run_whole(&input);
        let seq = tex.run_sequential(&input);
        let par = tex.run_parallel(&input);
        assert_eq!(
            max_abs_diff(&seq, &whole),
            Some(0.0),
            "sequential tiling diverged"
        );
        assert_eq!(
            max_abs_diff(&par, &whole),
            Some(0.0),
            "parallel tiling diverged"
        );
    }

    #[test]
    fn lossless_on_tiny_cnn_2x2() {
        let g = zoo::tiny_cnn(16);
        check_lossless(&g, &[NodeId(1), NodeId(2), NodeId(3), NodeId(4)], 2, 2, 1);
    }

    #[test]
    fn lossless_on_tiny_cnn_3x1_and_1x3() {
        let g = zoo::tiny_cnn(24);
        let run = [NodeId(1), NodeId(2), NodeId(3), NodeId(4)];
        check_lossless(&g, &run, 3, 1, 2);
        check_lossless(&g, &run, 1, 3, 3);
    }

    #[test]
    fn lossless_on_chain_of_same_convs_4x4() {
        let g = zoo::chain_cnn(3, 8, 32);
        check_lossless(&g, &[NodeId(1), NodeId(2), NodeId(3)], 4, 4, 7);
    }

    #[test]
    fn lossless_single_layer_single_tile() {
        let g = zoo::tiny_cnn(8);
        check_lossless(&g, &[NodeId(1)], 1, 1, 5);
    }

    #[test]
    fn lossless_on_strided_stack() {
        // conv/2 + pool: tests stride math through the chain.
        use d3_model::{Activation, LayerKind};
        use d3_tensor::ops::{ConvSpec, PoolKind, PoolSpec};
        let mut g = d3_model::DnnGraph::new("strided", d3_tensor::Shape3::new(3, 32, 32));
        let c1 = g.chain(
            "c1",
            LayerKind::Conv {
                spec: ConvSpec::new(3, 8, 3, 2, 1),
                batch_norm: true,
                activation: Activation::Leaky(0.1),
            },
            g.input(),
        );
        let p1 = g.chain(
            "p1",
            LayerKind::Pool {
                spec: PoolSpec::new(PoolKind::Max, 3, 2, 1),
            },
            c1,
        );
        let c2 = g.chain(
            "c2",
            LayerKind::Conv {
                spec: ConvSpec::new(8, 8, 5, 1, 2),
                batch_norm: false,
                activation: Activation::Relu,
            },
            p1,
        );
        g.chain("gap", LayerKind::GlobalAvgPool, c2);
        check_lossless(&g, &[c1, p1, c2], 2, 2, 11);
    }

    #[test]
    fn lossless_with_avg_pool_and_rect_kernels() {
        use d3_model::{Activation, LayerKind};
        use d3_tensor::ops::{ConvSpec, PoolKind, PoolSpec};
        let mut g = d3_model::DnnGraph::new("rect", d3_tensor::Shape3::new(4, 20, 20));
        let c1 = g.chain(
            "c1x7",
            LayerKind::Conv {
                spec: ConvSpec::rect(4, 6, 1, 7, 1, 1, 0, 3),
                batch_norm: true,
                activation: Activation::Relu,
            },
            g.input(),
        );
        let c2 = g.chain(
            "c7x1",
            LayerKind::Conv {
                spec: ConvSpec::rect(6, 6, 7, 1, 1, 1, 3, 0),
                batch_norm: false,
                activation: Activation::None,
            },
            c1,
        );
        let ap = g.chain(
            "avg",
            LayerKind::Pool {
                spec: PoolSpec::new(PoolKind::Avg, 3, 1, 1),
            },
            c2,
        );
        g.chain("gap", LayerKind::GlobalAvgPool, ap);
        check_lossless(&g, &[c1, c2, ap], 2, 3, 13);
    }

    #[test]
    fn weighted_plans_are_lossless_too() {
        // Heterogeneous pool: a 3:1 row split must not affect results.
        let g = zoo::tiny_cnn(24);
        let run = [NodeId(1), NodeId(2), NodeId(3), NodeId(4)];
        let exec = Executor::new(&g, 17);
        let plan = VsmPlan::weighted(&g, &run, &[3.0, 1.0], &[1.0, 2.0]).unwrap();
        assert!(plan.output_is_partition());
        let tex = TileExecutor::new(&exec, plan);
        let input = Tensor::random(3, 24, 24, 99);
        let whole = tex.run_whole(&input);
        let par = tex.run_parallel(&input);
        assert_eq!(max_abs_diff(&par, &whole), Some(0.0));
    }

    #[test]
    fn parallel_equals_sequential_for_many_seeds() {
        let g = zoo::tiny_cnn(16);
        for seed in 0..5 {
            check_lossless(&g, &[NodeId(1), NodeId(2), NodeId(3)], 2, 2, seed);
        }
    }
}
