//! # d3-vsm
//!
//! The Vertical Separation Module of the D3 reproduction (§III-F of the
//! paper): lossless spatial tiling of consecutive convolutional/pooling
//! layers for parallel execution across edge nodes.
//!
//! - [`TileGrid`]: `A × B` non-overlapping continuous output tiles,
//! - [`rtc::reverse_tile`]: the reverse tile calculation of Eqs. (4)–(5),
//!   padding- and stride-correct,
//! - [`VsmPlan`]: Algorithm 2 — fused tile stacks walked back from the
//!   last layer's output to the first layer's input, with redundancy
//!   accounting,
//! - [`TileExecutor`]: real tiled execution (sequential or one thread per
//!   tile) that is **bit-identical** to whole-tensor inference,
//! - [`latency`]: the analytical cost of tiled execution on an edge pool.
//!
//! ## Example
//!
//! ```
//! use d3_model::{zoo, Executor, NodeId};
//! use d3_tensor::{max_abs_diff, Tensor};
//! use d3_vsm::{TileExecutor, VsmPlan};
//!
//! let g = zoo::tiny_cnn(16);
//! let run: Vec<NodeId> = (1..=4).map(NodeId).collect();
//! let plan = VsmPlan::new(&g, &run, 2, 2).unwrap();
//! let exec = Executor::new(&g, 42);
//! let tiles = TileExecutor::new(&exec, plan);
//! let input = Tensor::random(3, 16, 16, 7);
//! let whole = tiles.run_whole(&input);
//! let tiled = tiles.run_parallel(&input);
//! assert_eq!(max_abs_diff(&whole, &tiled), Some(0.0)); // lossless
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
mod fused;
mod grid;
pub mod latency;
pub mod modnn;
pub mod rtc;

pub use exec::{TileExecutor, TiledRuns};
pub use fused::{find_tileable_runs, FusedTile, VsmError, VsmPlan};
pub use grid::{clamp_grid, TileGrid};
pub use latency::{best_uniform_grid, parallel_time, parallel_time_weighted, speedup};
pub use modnn::{compare_schemes, modnn_time, ModnnConfig};
pub use rtc::{reverse_tile, SpatialParams};
