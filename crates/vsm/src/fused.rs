//! Fused tile stacks (Algorithm 2 of the paper).
//!
//! Given `k` consecutive tileable layers `c1..ck` hosted at the edge tier,
//! VSM splits the *output* feature maps of `ck` (equivalently, the input
//! of the virtual layer `c_{k+1}`) into an `A × B` grid and walks every
//! tile backwards through [`crate::rtc::reverse_tile`] to find the exact
//! crop of `c1`'s input each edge node needs. A stack of correlated tiles
//! across the `k` layers is a *fused tile*; fused tiles execute fully
//! independently and their merged outputs are bit-identical to
//! whole-tensor inference.

use crate::grid::TileGrid;
use crate::rtc::{reverse_tile, SpatialParams};
use d3_model::{DnnGraph, NodeId};
use d3_tensor::Region;

/// Errors from planning a vertical separation.
#[derive(Debug, Clone, PartialEq)]
pub enum VsmError {
    /// The layer run is empty.
    EmptyRun,
    /// A layer in the run is not spatially tileable.
    NotTileable(NodeId),
    /// The run is not a chain inside the graph (fan-in/fan-out mid-run).
    NotAChain(NodeId),
    /// The requested grid is finer than the output plane.
    GridTooFine {
        /// Requested rows/cols.
        grid: (usize, usize),
        /// Output plane size.
        plane: (usize, usize),
    },
}

impl std::fmt::Display for VsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VsmError::EmptyRun => write!(f, "empty layer run"),
            VsmError::NotTileable(id) => write!(f, "layer {id} is not tileable"),
            VsmError::NotAChain(id) => write!(f, "layer {id} breaks the chain"),
            VsmError::GridTooFine { grid, plane } => write!(
                f,
                "grid {}x{} finer than output plane {}x{}",
                grid.0, grid.1, plane.0, plane.1
            ),
        }
    }
}

impl std::error::Error for VsmError {}

/// One fused tile: the region chain `r_1 ⊃ … ⊃ r_{k+1}` where `r_i` lives
/// in the *input* plane of layer `c_i` and `r_{k+1}` is the assigned
/// disjoint output tile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusedTile {
    /// Grid position `(a, b)`.
    pub pos: (usize, usize),
    /// `regions[i]` = region in the input plane of layer `i` (0-based);
    /// `regions[k]` = the output tile on `ck`'s output plane.
    pub regions: Vec<Region>,
}

impl FusedTile {
    /// The crop of `c1`'s input this tile's edge node receives.
    pub fn input_region(&self) -> Region {
        self.regions[0]
    }

    /// The disjoint output tile this fused stack produces.
    pub fn output_region(&self) -> Region {
        *self.regions.last().expect("non-empty chain")
    }
}

/// A complete vertical separation plan for a run of consecutive layers.
#[derive(Debug, Clone, PartialEq)]
pub struct VsmPlan {
    /// The layer run `c1..ck` (graph vertex ids, in execution order).
    pub layers: Vec<NodeId>,
    /// Spatial parameters per layer.
    pub params: Vec<SpatialParams>,
    /// Input plane (h, w) per layer, plus the output plane of the last
    /// layer: `planes.len() == layers.len() + 1`.
    pub planes: Vec<(usize, usize)>,
    /// The fused tiles, row-major.
    pub tiles: Vec<FusedTile>,
    /// Grid shape.
    pub grid: (usize, usize),
}

impl VsmPlan {
    /// Builds the plan: Algorithm 2 (`VSM()`), with a uniform `A × B`
    /// tile decision applied to the output of the last layer.
    ///
    /// # Errors
    ///
    /// See [`VsmError`].
    pub fn new(
        graph: &DnnGraph,
        layers: &[NodeId],
        rows: usize,
        cols: usize,
    ) -> Result<VsmPlan, VsmError> {
        Self::build(graph, layers, |oh, ow| {
            if rows > oh || cols > ow {
                Err(VsmError::GridTooFine {
                    grid: (rows, cols),
                    plane: (oh, ow),
                })
            } else {
                Ok(TileGrid::new(rows, cols, oh, ow))
            }
        })
    }

    /// Builds the plan with a capacity-weighted grid (heterogeneous edge
    /// pools: faster nodes receive proportionally larger tiles; tile
    /// `(a, b)` maps to the node with row weight `a` and column weight
    /// `b`).
    ///
    /// # Errors
    ///
    /// See [`VsmError`].
    pub fn weighted(
        graph: &DnnGraph,
        layers: &[NodeId],
        row_weights: &[f64],
        col_weights: &[f64],
    ) -> Result<VsmPlan, VsmError> {
        let (rows, cols) = (row_weights.len(), col_weights.len());
        Self::build(graph, layers, |oh, ow| {
            if rows > oh || cols > ow {
                Err(VsmError::GridTooFine {
                    grid: (rows, cols),
                    plane: (oh, ow),
                })
            } else {
                Ok(TileGrid::weighted(row_weights, col_weights, oh, ow))
            }
        })
    }

    fn build(
        graph: &DnnGraph,
        layers: &[NodeId],
        make_grid: impl FnOnce(usize, usize) -> Result<TileGrid, VsmError>,
    ) -> Result<VsmPlan, VsmError> {
        if layers.is_empty() {
            return Err(VsmError::EmptyRun);
        }
        // Validate chain-ness and tileability; collect params and planes.
        let mut params = Vec::with_capacity(layers.len());
        let mut planes = Vec::with_capacity(layers.len() + 1);
        for (i, &id) in layers.iter().enumerate() {
            let node = graph.node(id);
            let p = SpatialParams::of(&node.kind).ok_or(VsmError::NotTileable(id))?;
            if node.preds.len() != 1 {
                return Err(VsmError::NotAChain(id));
            }
            if i + 1 < layers.len() {
                // Mid-run vertices must feed exactly the next run member.
                if node.succs.as_slice() != [layers[i + 1]] {
                    return Err(VsmError::NotAChain(id));
                }
            }
            let in_shape = graph.node(node.preds[0]).shape;
            planes.push((in_shape.h, in_shape.w));
            params.push(p);
        }
        let out_shape = graph.node(*layers.last().expect("non-empty")).shape;
        planes.push((out_shape.h, out_shape.w));

        let (oh, ow) = (out_shape.h, out_shape.w);
        let grid = make_grid(oh, ow)?;
        let (rows, cols) = (grid.rows, grid.cols);
        // Algorithm 2: for each output tile, RTC back through ck..c1.
        let mut tiles = Vec::with_capacity(grid.len());
        for a in 0..rows {
            for b in 0..cols {
                let mut regions = vec![grid.tile(a, b)];
                for i in (0..layers.len()).rev() {
                    let (h, w) = planes[i];
                    let next = regions.last().expect("non-empty");
                    regions.push(reverse_tile(&params[i], *next, h, w));
                }
                regions.reverse();
                tiles.push(FusedTile {
                    pos: (a, b),
                    regions,
                });
            }
        }
        Ok(VsmPlan {
            layers: layers.to_vec(),
            params,
            planes,
            tiles,
            grid: (rows, cols),
        })
    }

    /// Number of fused tiles (= edge nodes used).
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// Computational redundancy of the separation: the total *work* of the
    /// tiled execution relative to whole-tensor execution, where work at
    /// each layer is proportional to the produced output area. `1.0` means
    /// no overlap; the paper notes VSM's speedup on 4 nodes stays below 4×
    /// exactly because of this spatial overlap.
    ///
    /// The ratio can even drop *below* 1.0: when a downstream strided
    /// layer consumes only part of its input plane, RTC computes exactly
    /// the consumed region, skipping dead outputs that whole-tensor
    /// execution computes wastefully.
    pub fn redundancy(&self) -> f64 {
        let mut tiled = 0usize;
        let mut whole = 0usize;
        for (i, _) in self.layers.iter().enumerate() {
            let (h, w) = self.planes[i + 1];
            whole += h * w;
            for t in &self.tiles {
                tiled += t.regions[i + 1].area();
            }
        }
        tiled as f64 / whole as f64
    }

    /// Input-transfer redundancy: total bytes of `c1`-input crops shipped
    /// to edge nodes relative to the whole input (scatter amplification).
    pub fn input_redundancy(&self) -> f64 {
        let (h, w) = self.planes[0];
        let total: usize = self.tiles.iter().map(|t| t.input_region().area()).sum();
        total as f64 / (h * w) as f64
    }

    /// Output tiles are disjoint and exactly cover the output plane
    /// (checked invariant; exposed for tests and debugging).
    pub fn output_is_partition(&self) -> bool {
        let (h, w) = *self.planes.last().expect("non-empty");
        let area: usize = self.tiles.iter().map(|t| t.output_region().area()).sum();
        if area != h * w {
            return false;
        }
        for i in 0..self.tiles.len() {
            for j in i + 1..self.tiles.len() {
                if self.tiles[i]
                    .output_region()
                    .intersects(&self.tiles[j].output_region())
                {
                    return false;
                }
            }
        }
        true
    }
}

/// Finds maximal runs of consecutive tileable layers within `members`
/// (a tier's segment): each run is a chain of conv/pool/activation
/// vertices, the unit VSM parallelizes. Runs shorter than `min_len` are
/// dropped.
pub fn find_tileable_runs(
    graph: &DnnGraph,
    members: &[NodeId],
    min_len: usize,
) -> Vec<Vec<NodeId>> {
    let member_set: std::collections::HashSet<NodeId> = members.iter().copied().collect();
    let tileable = |id: NodeId| {
        id != graph.input() && graph.node(id).kind.is_tileable() && graph.node(id).preds.len() == 1
    };
    let mut runs = Vec::new();
    let mut used: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
    let mut sorted: Vec<NodeId> = members.to_vec();
    sorted.sort();
    for &start in &sorted {
        if used.contains(&start) || !tileable(start) {
            continue;
        }
        // `start` must truly start a run: its predecessor is not a
        // mid-run-extendable member.
        let pred = graph.node(start).preds[0];
        let pred_extends =
            member_set.contains(&pred) && tileable(pred) && graph.node(pred).succs.len() == 1;
        if pred_extends {
            continue; // will be covered when the run through `pred` grows
        }
        let mut run = vec![start];
        let mut cur = start;
        loop {
            let node = graph.node(cur);
            if node.succs.len() != 1 {
                break;
            }
            let next = node.succs[0];
            if !member_set.contains(&next) || !tileable(next) || used.contains(&next) {
                break;
            }
            run.push(next);
            cur = next;
        }
        for &id in &run {
            used.insert(id);
        }
        if run.len() >= min_len {
            runs.push(run);
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_model::zoo;

    #[test]
    fn plan_on_tiny_cnn() {
        let g = zoo::tiny_cnn(16);
        // conv1(1), pool1(2), conv2(3), conv3(4) form a tileable run.
        let run: Vec<NodeId> = (1..=4).map(NodeId).collect();
        let plan = VsmPlan::new(&g, &run, 2, 2).unwrap();
        assert_eq!(plan.tile_count(), 4);
        assert!(plan.output_is_partition());
        assert!(plan.redundancy() >= 1.0);
        assert!(plan.input_redundancy() >= 1.0);
    }

    #[test]
    fn redundancy_grows_with_grid() {
        let g = zoo::tiny_cnn(32);
        let run: Vec<NodeId> = (1..=4).map(NodeId).collect();
        let r2 = VsmPlan::new(&g, &run, 2, 2).unwrap().redundancy();
        let r4 = VsmPlan::new(&g, &run, 4, 4).unwrap().redundancy();
        assert!(r4 > r2, "finer grid → more halo overlap ({r4} vs {r2})");
    }

    #[test]
    fn rejects_non_chain_runs() {
        let g = zoo::diamond_net(16);
        // stem(1) fans out to 2 and 3: including it mid-run must fail.
        let run = vec![NodeId(1), NodeId(2)];
        assert!(matches!(
            VsmPlan::new(&g, &run, 2, 2),
            Err(VsmError::NotAChain(_))
        ));
    }

    #[test]
    fn rejects_untileable_layers() {
        let g = zoo::tiny_cnn(16);
        // gap (5) is not tileable.
        let run = vec![NodeId(4), NodeId(5)];
        assert!(matches!(
            VsmPlan::new(&g, &run, 2, 2),
            Err(VsmError::NotTileable(_))
        ));
    }

    #[test]
    fn rejects_too_fine_grids() {
        let g = zoo::tiny_cnn(16);
        let run = vec![NodeId(1)];
        assert!(matches!(
            VsmPlan::new(&g, &run, 64, 64),
            Err(VsmError::GridTooFine { .. })
        ));
    }

    #[test]
    fn finds_runs_in_vgg_edge_segment() {
        let g = zoo::vgg16(224);
        // Pretend layers 1..=7 (conv1..conv4 + pools) sit at the edge.
        let members: Vec<NodeId> = (1..=7).map(NodeId).collect();
        let runs = find_tileable_runs(&g, &members, 2);
        assert_eq!(runs.len(), 1, "contiguous chain yields a single run");
        assert_eq!(runs[0].len(), 7);
    }

    #[test]
    fn runs_stop_at_non_tileable_vertices() {
        let g = zoo::tiny_cnn(16);
        let all: Vec<NodeId> = g.layer_ids().collect();
        let runs = find_tileable_runs(&g, &all, 1);
        // conv1,pool1,conv2,conv3 then gap/fc/softmax break it.
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].len(), 4);
    }

    #[test]
    fn runs_split_at_fanout() {
        let g = zoo::resnet18(224);
        let all: Vec<NodeId> = g.layer_ids().collect();
        let runs = find_tileable_runs(&g, &all, 1);
        // Residual topology: every run stops at block joins, but conv1 +
        // maxpool at least form one.
        assert!(!runs.is_empty());
        for run in &runs {
            // Verify each run is a plannable chain.
            VsmPlan::new(&g, run, 1, 1).unwrap();
        }
    }

    #[test]
    fn fig7_chain_of_two() {
        // Two same-convs on an 8×8 plane, 2×2 grid: each input crop grows
        // by a 2-pixel halo (one per conv) where not clamped.
        let g = zoo::chain_cnn(2, 4, 8);
        let run = vec![NodeId(1), NodeId(2)];
        let plan = VsmPlan::new(&g, &run, 2, 2).unwrap();
        let t00 = &plan.tiles[0];
        assert_eq!(t00.output_region(), d3_tensor::Region::new(0, 4, 0, 4));
        assert_eq!(t00.regions[1], d3_tensor::Region::new(0, 5, 0, 5));
        assert_eq!(t00.input_region(), d3_tensor::Region::new(0, 6, 0, 6));
    }
}
