//! Tile grids: `A × B` non-overlapping continuous tiles over a feature-map
//! plane (§III-F), including *weighted* grids for heterogeneous edge
//! pools (the AOFL-style extension the paper cites as related work:
//! "an algorithm to find the optimal tile partition according to
//! resources of each computation node").

use d3_tensor::Region;

/// An `A × B` partition of an `h × w` plane into contiguous,
/// non-overlapping tiles (the paper's `τ^(a,b)` indexing: `a` is the row,
/// `b` the column, `τ^(0,0)` the top-left tile).
///
/// The default ([`TileGrid::new`]) splits uniformly; [`TileGrid::weighted`]
/// sizes rows/columns proportionally to per-node capacity weights so a
/// faster edge node receives a larger tile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileGrid {
    /// Tile rows (`A`).
    pub rows: usize,
    /// Tile columns (`B`).
    pub cols: usize,
    /// Plane height.
    pub h: usize,
    /// Plane width.
    pub w: usize,
    /// Row boundaries: `rows + 1` ascending offsets, `0` first, `h` last.
    row_bounds: Vec<usize>,
    /// Column boundaries: `cols + 1` ascending offsets.
    col_bounds: Vec<usize>,
}

/// Clamps a requested `(rows, cols)` grid to an `(h, w)` output plane:
/// a grid can never be finer than the plane it tiles, and never
/// degenerate. Every deployment path (latency planning, per-frame
/// distributed execution, streaming stages) must clamp identically or
/// their tile plans diverge.
#[must_use]
pub fn clamp_grid(grid: (usize, usize), plane: (usize, usize)) -> (usize, usize) {
    (grid.0.min(plane.0).max(1), grid.1.min(plane.1).max(1))
}

impl TileGrid {
    /// Creates a uniform grid (balanced partition; remainder pixels spread
    /// over the leading rows/columns).
    ///
    /// # Panics
    ///
    /// Panics when the grid has more rows/columns than pixels.
    pub fn new(rows: usize, cols: usize, h: usize, w: usize) -> Self {
        assert!(rows >= 1 && cols >= 1, "grid must be at least 1x1");
        assert!(
            rows <= h && cols <= w,
            "grid {rows}x{cols} finer than plane {h}x{w}"
        );
        Self {
            rows,
            cols,
            h,
            w,
            row_bounds: uniform_bounds(h, rows),
            col_bounds: uniform_bounds(w, cols),
        }
    }

    /// Creates a capacity-weighted grid: row `a` gets a share of the
    /// height proportional to `row_weights[a]` (likewise columns), with
    /// every tile at least one pixel. Use this when edge nodes are
    /// heterogeneous, so each node's tile matches its throughput.
    ///
    /// # Panics
    ///
    /// Panics on empty/non-positive weights or grids finer than the plane.
    pub fn weighted(row_weights: &[f64], col_weights: &[f64], h: usize, w: usize) -> Self {
        let rows = row_weights.len();
        let cols = col_weights.len();
        assert!(rows >= 1 && cols >= 1, "grid must be at least 1x1");
        assert!(
            rows <= h && cols <= w,
            "grid {rows}x{cols} finer than plane {h}x{w}"
        );
        Self {
            rows,
            cols,
            h,
            w,
            row_bounds: weighted_bounds(h, row_weights),
            col_bounds: weighted_bounds(w, col_weights),
        }
    }

    /// Number of tiles (`A × B`).
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Grids always contain at least one tile; provided for the
    /// `len`/`is_empty` API convention.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The region of tile `(a, b)`.
    pub fn tile(&self, a: usize, b: usize) -> Region {
        assert!(a < self.rows && b < self.cols, "tile index out of range");
        Region::new(
            self.row_bounds[a],
            self.row_bounds[a + 1],
            self.col_bounds[b],
            self.col_bounds[b + 1],
        )
    }

    /// All tiles in row-major order.
    pub fn tiles(&self) -> Vec<Region> {
        let mut out = Vec::with_capacity(self.len());
        for a in 0..self.rows {
            for b in 0..self.cols {
                out.push(self.tile(a, b));
            }
        }
        out
    }
}

fn uniform_bounds(extent: usize, parts: usize) -> Vec<usize> {
    let base = extent / parts;
    let rem = extent % parts;
    let mut bounds = Vec::with_capacity(parts + 1);
    let mut pos = 0;
    bounds.push(0);
    for idx in 0..parts {
        pos += base + usize::from(idx < rem);
        bounds.push(pos);
    }
    bounds
}

/// Proportional boundaries with a 1-pixel floor per part. The floor is
/// enforced by a final repair sweep (steal pixels from the widest parts),
/// which terminates because `parts ≤ extent`.
fn weighted_bounds(extent: usize, weights: &[f64]) -> Vec<usize> {
    assert!(
        weights.iter().all(|&w| w > 0.0 && w.is_finite()),
        "weights must be positive and finite"
    );
    let total: f64 = weights.iter().sum();
    let parts = weights.len();
    // Initial integer shares by largest remainder.
    let mut shares: Vec<usize> = weights
        .iter()
        .map(|&w| ((w / total) * extent as f64).floor() as usize)
        .collect();
    let mut assigned: usize = shares.iter().sum();
    // Distribute leftover pixels to the largest fractional remainders.
    let mut order: Vec<usize> = (0..parts).collect();
    order.sort_by(|&i, &j| {
        let fi = (weights[i] / total) * extent as f64 - shares[i] as f64;
        let fj = (weights[j] / total) * extent as f64 - shares[j] as f64;
        fj.partial_cmp(&fi).expect("finite remainders")
    });
    let mut k = 0;
    while assigned < extent {
        shares[order[k % parts]] += 1;
        assigned += 1;
        k += 1;
    }
    // Enforce the 1-pixel floor.
    while let Some(starved) = shares.iter().position(|&s| s == 0) {
        let richest = (0..parts)
            .max_by_key(|&i| shares[i])
            .expect("non-empty shares");
        shares[richest] -= 1;
        shares[starved] += 1;
    }
    let mut bounds = Vec::with_capacity(parts + 1);
    let mut pos = 0;
    bounds.push(0);
    for s in shares {
        pos += s;
        bounds.push(pos);
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_by_two_even_split() {
        let g = TileGrid::new(2, 2, 8, 8);
        assert_eq!(g.tile(0, 0), Region::new(0, 4, 0, 4));
        assert_eq!(g.tile(1, 1), Region::new(4, 8, 4, 8));
    }

    #[test]
    fn tiles_partition_the_plane() {
        for (rows, cols, h, w) in [(2, 2, 7, 9), (3, 1, 10, 4), (4, 4, 13, 13), (1, 1, 5, 5)] {
            let g = TileGrid::new(rows, cols, h, w);
            let tiles = g.tiles();
            // Disjoint…
            for i in 0..tiles.len() {
                for j in i + 1..tiles.len() {
                    assert!(
                        !tiles[i].intersects(&tiles[j]),
                        "{:?} {:?}",
                        tiles[i],
                        tiles[j]
                    );
                }
            }
            // …and complete.
            let area: usize = tiles.iter().map(Region::area).sum();
            assert_eq!(area, h * w);
        }
    }

    #[test]
    fn uneven_split_spreads_remainder() {
        let g = TileGrid::new(3, 3, 7, 7);
        // 7 = 3+2+2.
        assert_eq!(g.tile(0, 0).height(), 3);
        assert_eq!(g.tile(1, 0).height(), 2);
        assert_eq!(g.tile(2, 0).height(), 2);
    }

    #[test]
    #[should_panic(expected = "finer than plane")]
    fn overly_fine_grid_rejected() {
        TileGrid::new(5, 5, 3, 3);
    }

    #[test]
    fn row_major_order() {
        let g = TileGrid::new(2, 2, 4, 4);
        let tiles = g.tiles();
        assert_eq!(tiles[0], g.tile(0, 0));
        assert_eq!(tiles[1], g.tile(0, 1));
        assert_eq!(tiles[2], g.tile(1, 0));
        assert_eq!(tiles[3], g.tile(1, 1));
    }

    #[test]
    fn weighted_grid_sizes_proportionally() {
        // 3:1 capacity split of a 16-pixel height → 12 + 4 rows.
        let g = TileGrid::weighted(&[3.0, 1.0], &[1.0], 16, 8);
        assert_eq!(g.tile(0, 0), Region::new(0, 12, 0, 8));
        assert_eq!(g.tile(1, 0), Region::new(12, 16, 0, 8));
    }

    #[test]
    fn weighted_grid_partitions_exactly() {
        for weights in [vec![1.0, 2.0, 3.0], vec![0.1, 5.0], vec![1.0; 5]] {
            let g = TileGrid::weighted(&weights, &[2.0, 1.0], 23, 17);
            let area: usize = g.tiles().iter().map(Region::area).sum();
            assert_eq!(area, 23 * 17, "weights {weights:?}");
            let tiles = g.tiles();
            for i in 0..tiles.len() {
                for j in i + 1..tiles.len() {
                    assert!(!tiles[i].intersects(&tiles[j]));
                }
            }
        }
    }

    #[test]
    fn weighted_grid_enforces_pixel_floor() {
        // Extreme skew: the weak node still gets ≥ 1 pixel.
        let g = TileGrid::weighted(&[1000.0, 0.001], &[1.0], 8, 8);
        assert!(g.tile(1, 0).height() >= 1);
        assert_eq!(g.tile(0, 0).height() + g.tile(1, 0).height(), 8);
    }

    #[test]
    fn uniform_equals_equal_weights() {
        let a = TileGrid::new(3, 2, 9, 8);
        let b = TileGrid::weighted(&[1.0; 3], &[1.0; 2], 9, 8);
        assert_eq!(a.tiles(), b.tiles());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_weights_rejected() {
        TileGrid::weighted(&[1.0, 0.0], &[1.0], 8, 8);
    }
}
