//! Reverse tile calculation (RTC): Eqs. (4) and (5) of the paper.
//!
//! Given a tile of a layer's *output* plane, RTC computes the region of
//! the layer's *input* plane that is needed to produce it. Eq. (4) maps
//! output coordinates into the padded input plane; Eq. (5) removes the
//! padding and clamps to the real plane (padding entries are synthesized
//! at execution time, only where the receptive field leaves the global
//! plane — this is precisely what makes VSM lossless where DeepThings'
//! FTP loses accuracy).

use d3_model::LayerKind;
use d3_tensor::Region;

/// Spatial parameters of one tileable layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpatialParams {
    /// Kernel height `Fh` / width `Fw`.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Strides.
    pub sh: usize,
    /// Horizontal stride.
    pub sw: usize,
    /// Paddings.
    pub ph: usize,
    /// Horizontal padding.
    pub pw: usize,
}

impl SpatialParams {
    /// The identity mapping (elementwise layers: standalone activations).
    pub const IDENTITY: SpatialParams = SpatialParams {
        kh: 1,
        kw: 1,
        sh: 1,
        sw: 1,
        ph: 0,
        pw: 0,
    };

    /// Extracts spatial parameters from a layer kind.
    ///
    /// Returns `None` for kinds VSM cannot tile (dense, concat, …).
    pub fn of(kind: &LayerKind) -> Option<SpatialParams> {
        match kind {
            LayerKind::Conv { spec, .. } => Some(SpatialParams {
                kh: spec.kh,
                kw: spec.kw,
                sh: spec.sh,
                sw: spec.sw,
                ph: spec.ph,
                pw: spec.pw,
            }),
            LayerKind::DepthwiseConv { spec, .. } => Some(SpatialParams {
                kh: spec.kh,
                kw: spec.kw,
                sh: spec.sh,
                sw: spec.sw,
                ph: spec.ph,
                pw: spec.pw,
            }),
            LayerKind::Pool { spec } => Some(SpatialParams {
                kh: spec.kh,
                kw: spec.kw,
                sh: spec.sh,
                sw: spec.sw,
                ph: spec.ph,
                pw: spec.pw,
            }),
            LayerKind::Activation { .. } => Some(SpatialParams::IDENTITY),
            _ => None,
        }
    }
}

/// Reverse tile calculation: the input-plane region needed to compute the
/// output-plane region `out` of a layer with parameters `p`, given the
/// input plane's size `(in_h, in_w)`.
///
/// Implements Eq. (4) (padded coordinates:
/// `x̂α = S·xα`, `x̂β = S·(xβ−1) + F` for half-open regions) followed by
/// Eq. (5) (padding removal with clamping to the real plane).
pub fn reverse_tile(p: &SpatialParams, out: Region, in_h: usize, in_w: usize) -> Region {
    // Eq. (4): coordinates in the padded input plane.
    let padded_y0 = p.sh * out.y0;
    let padded_y1 = p.sh * (out.y1 - 1) + p.kh;
    let padded_x0 = p.sw * out.x0;
    let padded_x1 = p.sw * (out.x1 - 1) + p.kw;
    // Eq. (5): offset the padding and clamp to the real plane.
    let y0 = padded_y0.saturating_sub(p.ph).min(in_h.saturating_sub(1));
    let y1 = (padded_y1.saturating_sub(p.ph)).min(in_h).max(y0 + 1);
    let x0 = padded_x0.saturating_sub(p.pw).min(in_w.saturating_sub(1));
    let x1 = (padded_x1.saturating_sub(p.pw)).min(in_w).max(x0 + 1);
    Region::new(y0, y1, x0, x1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(k: usize, s: usize, p: usize) -> SpatialParams {
        SpatialParams {
            kh: k,
            kw: k,
            sh: s,
            sw: s,
            ph: p,
            pw: p,
        }
    }

    #[test]
    fn fig7_example() {
        // Fig. 7: layer c_{i-1} has a 2×2 input, 3×3 kernel, stride 1,
        // padding 1 → 2×2 output. Each 1×1 output tile needs the whole
        // 2×2 (real) input; padding is synthesized at execution time.
        let p = conv(3, 1, 1);
        let tile = reverse_tile(&p, Region::new(0, 1, 0, 1), 2, 2);
        assert_eq!(tile, Region::new(0, 2, 0, 2));
        let tile = reverse_tile(&p, Region::new(1, 2, 1, 2), 2, 2);
        assert_eq!(tile, Region::new(0, 2, 0, 2));
    }

    #[test]
    fn same_conv_grows_tile_by_halo() {
        // 3×3/1 pad 1 on a 8×8 plane: interior tile grows by 1 on each side.
        let p = conv(3, 1, 1);
        let tile = reverse_tile(&p, Region::new(2, 4, 2, 4), 8, 8);
        assert_eq!(tile, Region::new(1, 5, 1, 5));
    }

    #[test]
    fn border_tile_clamps_to_plane() {
        let p = conv(3, 1, 1);
        let tile = reverse_tile(&p, Region::new(0, 4, 0, 4), 8, 8);
        assert_eq!(tile, Region::new(0, 5, 0, 5));
        let tile = reverse_tile(&p, Region::new(4, 8, 4, 8), 8, 8);
        assert_eq!(tile, Region::new(3, 8, 3, 8));
    }

    #[test]
    fn strided_conv_maps_back_with_stride() {
        // 3×3/2 pad 1 on 8×8 → 4×4 output. Output rows [0,2) need padded
        // rows [0, 2*1+3) = [0,5) → real rows [0,4).
        let p = conv(3, 2, 1);
        let tile = reverse_tile(&p, Region::new(0, 2, 0, 2), 8, 8);
        assert_eq!(tile, Region::new(0, 4, 0, 4));
    }

    #[test]
    fn valid_conv_no_padding() {
        // 3×3/1 pad 0 on 8×8 → 6×6. Output [0,3) needs input [0,5).
        let p = conv(3, 1, 0);
        let tile = reverse_tile(&p, Region::new(0, 3, 0, 3), 8, 8);
        assert_eq!(tile, Region::new(0, 5, 0, 5));
    }

    #[test]
    fn pool_2x2_halves_cleanly() {
        // Non-overlapping 2×2/2 pooling: tiles map back with no halo.
        let p = conv(2, 2, 0);
        let tile = reverse_tile(&p, Region::new(0, 2, 2, 4), 8, 8);
        assert_eq!(tile, Region::new(0, 4, 4, 8));
    }

    #[test]
    fn identity_params_are_identity() {
        let tile = Region::new(1, 3, 2, 5);
        assert_eq!(reverse_tile(&SpatialParams::IDENTITY, tile, 8, 8), tile);
    }

    #[test]
    fn rect_kernel_params_from_layer_kinds() {
        use d3_model::Activation;
        use d3_tensor::ops::ConvSpec;
        let kind = LayerKind::Conv {
            spec: ConvSpec::rect(4, 4, 1, 7, 1, 1, 0, 3),
            batch_norm: true,
            activation: Activation::Relu,
        };
        let p = SpatialParams::of(&kind).unwrap();
        assert_eq!((p.kh, p.kw, p.ph, p.pw), (1, 7, 0, 3));
        assert_eq!(SpatialParams::of(&LayerKind::Softmax), None);
        assert_eq!(SpatialParams::of(&LayerKind::Concat), None);
    }

    #[test]
    fn receptive_field_is_monotone_in_tile_size() {
        let p = conv(5, 2, 2);
        let small = reverse_tile(&p, Region::new(2, 4, 2, 4), 32, 32);
        let large = reverse_tile(&p, Region::new(1, 5, 1, 5), 32, 32);
        assert!(large.contains(&small));
    }
}
