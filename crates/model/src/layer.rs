//! DNN layer descriptions.
//!
//! A *layer* in the paper's system model is "one or multiple mathematical
//! operators" (§III-C). Accordingly [`LayerKind::Conv`] and
//! [`LayerKind::Dense`] carry their fused inference-time batch-norm and
//! activation, matching both how frameworks deploy trained models and the
//! per-layer granularity of the paper's figures (e.g. Fig. 1 plots
//! `conv1..conv13, fc1..fc3` for VGG-16).

use d3_tensor::ops::{ConvSpec, DepthwiseSpec, PoolSpec};
use d3_tensor::Shape3;
use std::fmt;

/// Activation fused into a compute layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Activation {
    /// No activation (linear output, e.g. final classifier logits).
    None,
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with the given negative slope (Darknet-53 uses 0.1).
    Leaky(f32),
}

/// The operator(s) a DNN layer performs.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerKind {
    /// The virtual input vertex `v0` producing the network input.
    Input {
        /// Shape of the produced input tensor.
        shape: Shape3,
    },
    /// 2-D convolution with optional fused batch-norm and activation.
    Conv {
        /// Convolution hyper-parameters.
        spec: ConvSpec,
        /// Whether an inference-time batch-norm follows the convolution.
        batch_norm: bool,
        /// Fused activation.
        activation: Activation,
    },
    /// Depthwise convolution (MobileNet-style) with optional fused
    /// batch-norm and activation. Channel-preserving; each channel is
    /// filtered independently.
    DepthwiseConv {
        /// Depthwise hyper-parameters.
        spec: DepthwiseSpec,
        /// Whether an inference-time batch-norm follows.
        batch_norm: bool,
        /// Fused activation.
        activation: Activation,
    },
    /// Spatial pooling.
    Pool {
        /// Pooling hyper-parameters.
        spec: PoolSpec,
    },
    /// Global average pooling collapsing each channel to one value.
    GlobalAvgPool,
    /// Fully-connected layer (input flattened) with fused activation.
    Dense {
        /// Flattened input dimensionality.
        in_dim: usize,
        /// Output dimensionality.
        out_dim: usize,
        /// Fused activation.
        activation: Activation,
    },
    /// Channel-axis concatenation of all predecessors (Inception joins).
    Concat,
    /// Elementwise addition of all predecessors (residual joins).
    Add,
    /// Softmax over the flattened input (final classifier stage).
    Softmax,
    /// A standalone elementwise activation vertex (e.g. the ReLU applied
    /// *after* a ResNet shortcut addition, which cannot fuse into either
    /// branch).
    Activation {
        /// The activation function.
        act: Activation,
    },
}

impl LayerKind {
    /// Short lowercase tag used in layer names and reports.
    pub fn tag(&self) -> &'static str {
        match self {
            LayerKind::Input { .. } => "input",
            LayerKind::Conv { .. } => "conv",
            LayerKind::DepthwiseConv { .. } => "dwconv",
            LayerKind::Pool { spec } => match spec.kind {
                d3_tensor::ops::PoolKind::Max => "maxpool",
                d3_tensor::ops::PoolKind::Avg => "avgpool",
            },
            LayerKind::GlobalAvgPool => "gap",
            LayerKind::Dense { .. } => "fc",
            LayerKind::Concat => "concat",
            LayerKind::Add => "add",
            LayerKind::Softmax => "softmax",
            LayerKind::Activation { .. } => "act",
        }
    }

    /// Whether this kind is spatially tileable by the vertical separation
    /// module (conv and pooling layers; §III-F). Standalone elementwise
    /// activations are trivially tileable (identity coordinates).
    pub fn is_tileable(&self) -> bool {
        matches!(
            self,
            LayerKind::Conv { .. }
                | LayerKind::DepthwiseConv { .. }
                | LayerKind::Pool { .. }
                | LayerKind::Activation { .. }
        )
    }

    /// Number of learnable parameters.
    pub fn param_count(&self) -> usize {
        match self {
            LayerKind::Conv {
                spec, batch_norm, ..
            } => spec.param_count() + if *batch_norm { 2 * spec.out_c } else { 0 },
            LayerKind::DepthwiseConv {
                spec, batch_norm, ..
            } => spec.param_count() + if *batch_norm { 2 * spec.channels } else { 0 },
            LayerKind::Dense {
                in_dim, out_dim, ..
            } => in_dim * out_dim + out_dim,
            _ => 0,
        }
    }

    /// Infers the output shape from predecessor output shapes.
    ///
    /// # Errors
    ///
    /// Returns a message when arity, channel counts or spatial dimensions
    /// are inconsistent — this is the graph-validation backbone.
    pub fn infer_shape(&self, preds: &[Shape3]) -> Result<Shape3, String> {
        let single = |preds: &[Shape3]| -> Result<Shape3, String> {
            match preds {
                [one] => Ok(*one),
                other => Err(format!(
                    "{} expects exactly 1 predecessor, got {}",
                    self.tag(),
                    other.len()
                )),
            }
        };
        match self {
            LayerKind::Input { shape } => {
                if preds.is_empty() {
                    Ok(*shape)
                } else {
                    Err("input vertex cannot have predecessors".into())
                }
            }
            LayerKind::Conv { spec, .. } => {
                let p = single(preds)?;
                if p.c != spec.in_c {
                    return Err(format!(
                        "conv expects {} input channels, got {}",
                        spec.in_c, p.c
                    ));
                }
                let (oh, ow) = spec.out_hw(p.h, p.w);
                Ok(Shape3::new(spec.out_c, oh, ow))
            }
            LayerKind::DepthwiseConv { spec, .. } => {
                let p = single(preds)?;
                if p.c != spec.channels {
                    return Err(format!(
                        "depthwise conv expects {} channels, got {}",
                        spec.channels, p.c
                    ));
                }
                let (oh, ow) = spec.out_hw(p.h, p.w);
                Ok(Shape3::new(p.c, oh, ow))
            }
            LayerKind::Pool { spec } => {
                let p = single(preds)?;
                let (oh, ow) = spec.out_hw(p.h, p.w);
                Ok(Shape3::new(p.c, oh, ow))
            }
            LayerKind::GlobalAvgPool => {
                let p = single(preds)?;
                Ok(Shape3::new(p.c, 1, 1))
            }
            LayerKind::Dense {
                in_dim, out_dim, ..
            } => {
                let p = single(preds)?;
                if p.len() != *in_dim {
                    return Err(format!(
                        "dense expects flattened input of {}, got {} ({})",
                        in_dim,
                        p.len(),
                        p
                    ));
                }
                Ok(Shape3::new(*out_dim, 1, 1))
            }
            LayerKind::Concat => {
                if preds.len() < 2 {
                    return Err("concat needs at least 2 predecessors".into());
                }
                let (h, w) = (preds[0].h, preds[0].w);
                let mut c = 0;
                for p in preds {
                    if (p.h, p.w) != (h, w) {
                        return Err(format!("concat spatial mismatch: {p} vs {h}x{w}"));
                    }
                    c += p.c;
                }
                Ok(Shape3::new(c, h, w))
            }
            LayerKind::Add => {
                if preds.len() < 2 {
                    return Err("add needs at least 2 predecessors".into());
                }
                for p in &preds[1..] {
                    if *p != preds[0] {
                        return Err(format!("add shape mismatch: {} vs {}", p, preds[0]));
                    }
                }
                Ok(preds[0])
            }
            LayerKind::Softmax => single(preds),
            LayerKind::Activation { .. } => single(preds),
        }
    }

    /// Floating-point operation count of this layer given its predecessor
    /// shapes and (already inferred) output shape. Multiply-accumulates
    /// count as 2 FLOPs, matching common practice.
    pub fn flops(&self, preds: &[Shape3], out: Shape3) -> u64 {
        match self {
            LayerKind::Input { .. } => 0,
            LayerKind::Conv {
                spec,
                batch_norm,
                activation,
            } => {
                let p = preds[0];
                let mut f = 2 * spec.macs(p.h, p.w);
                if *batch_norm {
                    f += 2 * out.len() as u64;
                }
                if !matches!(activation, Activation::None) {
                    f += out.len() as u64;
                }
                f
            }
            LayerKind::DepthwiseConv {
                spec,
                batch_norm,
                activation,
            } => {
                let p = preds[0];
                let mut f = 2 * spec.macs(p.h, p.w);
                if *batch_norm {
                    f += 2 * out.len() as u64;
                }
                if !matches!(activation, Activation::None) {
                    f += out.len() as u64;
                }
                f
            }
            LayerKind::Pool { spec } => (spec.kh * spec.kw) as u64 * out.len() as u64,
            LayerKind::GlobalAvgPool => preds[0].len() as u64,
            LayerKind::Dense {
                in_dim,
                out_dim,
                activation,
            } => {
                let mut f = 2 * (*in_dim as u64) * (*out_dim as u64);
                if !matches!(activation, Activation::None) {
                    f += *out_dim as u64;
                }
                f
            }
            LayerKind::Concat => 0,
            LayerKind::Add => preds.len().saturating_sub(1) as u64 * out.len() as u64,
            LayerKind::Softmax => 4 * out.len() as u64,
            LayerKind::Activation { .. } => out.len() as u64,
        }
    }
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerKind::Conv { spec, .. } => write!(
                f,
                "conv {}x{}/{} {}→{}",
                spec.kh, spec.kw, spec.sh, spec.in_c, spec.out_c
            ),
            LayerKind::DepthwiseConv { spec, .. } => write!(
                f,
                "dwconv {}x{}/{} ×{}",
                spec.kh, spec.kw, spec.sh, spec.channels
            ),
            LayerKind::Dense {
                in_dim, out_dim, ..
            } => write!(f, "fc {in_dim}→{out_dim}"),
            other => write!(f, "{}", other.tag()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_tensor::ops::PoolKind;

    fn conv(in_c: usize, out_c: usize, k: usize, s: usize, p: usize) -> LayerKind {
        LayerKind::Conv {
            spec: ConvSpec::new(in_c, out_c, k, s, p),
            batch_norm: false,
            activation: Activation::Relu,
        }
    }

    #[test]
    fn conv_shape_inference() {
        let k = conv(3, 64, 3, 1, 1);
        let out = k.infer_shape(&[Shape3::new(3, 224, 224)]).unwrap();
        assert_eq!(out, Shape3::new(64, 224, 224));
    }

    #[test]
    fn conv_channel_mismatch_rejected() {
        let k = conv(3, 64, 3, 1, 1);
        assert!(k.infer_shape(&[Shape3::new(4, 8, 8)]).is_err());
    }

    #[test]
    fn conv_arity_enforced() {
        let k = conv(3, 64, 3, 1, 1);
        let s = Shape3::new(3, 8, 8);
        assert!(k.infer_shape(&[s, s]).is_err());
        assert!(k.infer_shape(&[]).is_err());
    }

    #[test]
    fn pool_preserves_channels() {
        let k = LayerKind::Pool {
            spec: PoolSpec::new(PoolKind::Max, 2, 2, 0),
        };
        let out = k.infer_shape(&[Shape3::new(64, 112, 112)]).unwrap();
        assert_eq!(out, Shape3::new(64, 56, 56));
    }

    #[test]
    fn dense_checks_flattened_len() {
        let k = LayerKind::Dense {
            in_dim: 512,
            out_dim: 10,
            activation: Activation::None,
        };
        assert_eq!(
            k.infer_shape(&[Shape3::new(512, 1, 1)]).unwrap(),
            Shape3::new(10, 1, 1)
        );
        assert_eq!(
            k.infer_shape(&[Shape3::new(8, 8, 8)]).unwrap(),
            Shape3::new(10, 1, 1)
        );
        assert!(k.infer_shape(&[Shape3::new(7, 8, 8)]).is_err());
    }

    #[test]
    fn concat_sums_channels() {
        let k = LayerKind::Concat;
        let out = k
            .infer_shape(&[Shape3::new(64, 28, 28), Shape3::new(96, 28, 28)])
            .unwrap();
        assert_eq!(out, Shape3::new(160, 28, 28));
        assert!(k
            .infer_shape(&[Shape3::new(1, 2, 2), Shape3::new(1, 3, 3)])
            .is_err());
        assert!(k.infer_shape(&[Shape3::new(1, 2, 2)]).is_err());
    }

    #[test]
    fn add_requires_identical_shapes() {
        let k = LayerKind::Add;
        let s = Shape3::new(64, 56, 56);
        assert_eq!(k.infer_shape(&[s, s]).unwrap(), s);
        assert!(k.infer_shape(&[s, Shape3::new(64, 28, 28)]).is_err());
    }

    #[test]
    fn input_takes_no_preds() {
        let k = LayerKind::Input {
            shape: Shape3::new(3, 224, 224),
        };
        assert!(k.infer_shape(&[]).is_ok());
        assert!(k.infer_shape(&[Shape3::new(1, 1, 1)]).is_err());
    }

    #[test]
    fn conv_flops_counts_macs_twice() {
        let k = LayerKind::Conv {
            spec: ConvSpec::new(3, 64, 3, 1, 1),
            batch_norm: false,
            activation: Activation::None,
        };
        let p = Shape3::new(3, 224, 224);
        let out = k.infer_shape(&[p]).unwrap();
        assert_eq!(k.flops(&[p], out), 2 * 64 * 3 * 9 * 224 * 224);
    }

    #[test]
    fn bn_and_act_add_flops() {
        let base = LayerKind::Conv {
            spec: ConvSpec::new(3, 8, 3, 1, 1),
            batch_norm: false,
            activation: Activation::None,
        };
        let fused = LayerKind::Conv {
            spec: ConvSpec::new(3, 8, 3, 1, 1),
            batch_norm: true,
            activation: Activation::Relu,
        };
        let p = Shape3::new(3, 16, 16);
        let out = base.infer_shape(&[p]).unwrap();
        assert_eq!(
            fused.flops(&[p], out),
            base.flops(&[p], out) + 3 * out.len() as u64
        );
    }

    #[test]
    fn param_counts() {
        assert_eq!(
            LayerKind::Conv {
                spec: ConvSpec::new(3, 64, 3, 1, 1),
                batch_norm: true,
                activation: Activation::Relu,
            }
            .param_count(),
            64 * 3 * 9 + 64 + 128
        );
        assert_eq!(LayerKind::Concat.param_count(), 0);
    }

    #[test]
    fn tileable_kinds() {
        assert!(conv(1, 1, 3, 1, 1).is_tileable());
        assert!(LayerKind::Pool {
            spec: PoolSpec::new(PoolKind::Avg, 2, 2, 0)
        }
        .is_tileable());
        assert!(!LayerKind::Softmax.is_tileable());
        assert!(!LayerKind::Add.is_tileable());
    }
}
