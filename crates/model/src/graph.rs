//! The DNN computation graph: the DAG `G = (V, L)` of the paper's system
//! model (§III-C).
//!
//! Vertices are DNN layers; a directed link `(vi, vj)` exists when layer
//! `i`'s output feeds layer `j`. A virtual input vertex `v0` marks the
//! start of the network. Nodes are appended with their predecessors, so
//! node ids are a topological order by construction; shape inference runs
//! at insertion time and rejects malformed graphs immediately.

use crate::layer::LayerKind;
use d3_tensor::Shape3;
use std::fmt;

/// Identifier of a vertex in a [`DnnGraph`]; `NodeId(0)` is always the
/// virtual input vertex `v0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Errors raised while building or validating a graph.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A referenced predecessor does not exist yet.
    UnknownPredecessor(NodeId),
    /// Shape inference failed (arity/channel/spatial inconsistency).
    Shape {
        /// Name of the offending layer.
        layer: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A non-input layer was added without predecessors.
    MissingPredecessors(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownPredecessor(id) => write!(f, "unknown predecessor {id}"),
            GraphError::Shape { layer, reason } => {
                write!(f, "shape error at layer `{layer}`: {reason}")
            }
            GraphError::MissingPredecessors(name) => {
                write!(f, "layer `{name}` has no predecessors")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A vertex of the DAG: one DNN layer plus its topology and inferred shape.
#[derive(Debug, Clone)]
pub struct Node {
    /// This node's id.
    pub id: NodeId,
    /// Human-readable unique-ish name, e.g. `conv3_2` or `blk2.res1.conv2`.
    pub name: String,
    /// The operator(s) this layer performs.
    pub kind: LayerKind,
    /// Direct predecessors (`V^p_i` in the paper).
    pub preds: Vec<NodeId>,
    /// Direct successors.
    pub succs: Vec<NodeId>,
    /// Inferred output shape.
    pub shape: Shape3,
}

impl Node {
    /// Output size in bytes (`λout` of the paper, assuming 4-byte floats).
    pub fn output_bytes(&self) -> u64 {
        self.shape.byte_size() as u64
    }
}

/// The DNN model as a DAG `G = (V, L)` (Eq. (1) of the paper).
#[derive(Debug, Clone)]
pub struct DnnGraph {
    name: String,
    nodes: Vec<Node>,
}

impl DnnGraph {
    /// Creates a graph containing only the virtual input vertex `v0`.
    pub fn new(name: impl Into<String>, input_shape: Shape3) -> Self {
        let input = Node {
            id: NodeId(0),
            name: "input".into(),
            kind: LayerKind::Input { shape: input_shape },
            preds: Vec::new(),
            succs: Vec::new(),
            shape: input_shape,
        };
        Self {
            name: name.into(),
            nodes: vec![input],
        }
    }

    /// The model name (e.g. `vgg16`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The virtual input vertex `v0`.
    pub fn input(&self) -> NodeId {
        NodeId(0)
    }

    /// The shape produced by `v0`.
    pub fn input_shape(&self) -> Shape3 {
        self.nodes[0].shape
    }

    /// Number of vertices including `v0`.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has only the input vertex.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Appends a layer whose inputs are `preds`, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] when a predecessor is unknown, the
    /// predecessor list is empty, or shape inference rejects the
    /// configuration.
    pub fn add_layer(
        &mut self,
        name: impl Into<String>,
        kind: LayerKind,
        preds: &[NodeId],
    ) -> Result<NodeId, GraphError> {
        let name = name.into();
        if preds.is_empty() {
            return Err(GraphError::MissingPredecessors(name));
        }
        for &p in preds {
            if p.0 >= self.nodes.len() {
                return Err(GraphError::UnknownPredecessor(p));
            }
        }
        let pred_shapes: Vec<Shape3> = preds.iter().map(|&p| self.nodes[p.0].shape).collect();
        let shape = kind
            .infer_shape(&pred_shapes)
            .map_err(|reason| GraphError::Shape {
                layer: name.clone(),
                reason,
            })?;
        let id = NodeId(self.nodes.len());
        for &p in preds {
            self.nodes[p.0].succs.push(id);
        }
        self.nodes.push(Node {
            id,
            name,
            kind,
            preds: preds.to_vec(),
            succs: Vec::new(),
            shape,
        });
        Ok(id)
    }

    /// Convenience: append a layer with a single predecessor, panicking on
    /// error. Zoo builders use this; their configurations are static and
    /// covered by tests, so a panic indicates a bug, not bad user input.
    pub fn chain(&mut self, name: impl Into<String>, kind: LayerKind, pred: NodeId) -> NodeId {
        self.add_layer(name, kind, &[pred]).expect("valid layer")
    }

    /// Borrow a node.
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// All nodes in id (= topological) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Ids of all vertices in topological order (`v0` first).
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Ids of all real layers (everything but `v0`).
    pub fn layer_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (1..self.nodes.len()).map(NodeId)
    }

    /// All directed links `(vi, vj)` of the DAG.
    pub fn links(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for n in &self.nodes {
            for &s in &n.succs {
                out.push((n.id, s));
            }
        }
        out
    }

    /// Output vertices (no successors). Classification networks have
    /// exactly one.
    pub fn outputs(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.succs.is_empty())
            .map(|n| n.id)
            .collect()
    }

    /// Whether the graph is a simple chain (every vertex has at most one
    /// predecessor and one successor). Neurosurgeon only supports chains.
    pub fn is_chain(&self) -> bool {
        self.nodes
            .iter()
            .all(|n| n.preds.len() <= 1 && n.succs.len() <= 1)
    }

    /// Longest distance `δ(vi)` (in edges) from `v0` to every vertex,
    /// computed by dynamic programming over the topological order
    /// (O(|V| + |L|), §III-E).
    pub fn longest_distances(&self) -> Vec<usize> {
        let mut delta = vec![0usize; self.nodes.len()];
        for n in &self.nodes {
            for &p in &n.preds {
                delta[n.id.0] = delta[n.id.0].max(delta[p.0] + 1);
            }
        }
        delta
    }

    /// The graph layers `Z_q = { vi : δ(vi) = q }` used by HPA to sweep the
    /// DAG front-to-back. `result[q]` lists the vertices of layer `q`;
    /// `result[0] == [v0]`.
    pub fn graph_layers(&self) -> Vec<Vec<NodeId>> {
        let delta = self.longest_distances();
        let depth = delta.iter().copied().max().unwrap_or(0);
        let mut layers = vec![Vec::new(); depth + 1];
        for (i, &d) in delta.iter().enumerate() {
            layers[d].push(NodeId(i));
        }
        layers
    }

    /// Total FLOPs of one inference pass.
    pub fn total_flops(&self) -> u64 {
        self.ids().map(|id| self.flops(id)).sum()
    }

    /// FLOPs of a single vertex.
    pub fn flops(&self, id: NodeId) -> u64 {
        let n = &self.nodes[id.0];
        let pred_shapes: Vec<Shape3> = n.preds.iter().map(|&p| self.nodes[p.0].shape).collect();
        n.kind.flops(&pred_shapes, n.shape)
    }

    /// Total learnable parameters.
    pub fn total_params(&self) -> u64 {
        self.nodes.iter().map(|n| n.kind.param_count() as u64).sum()
    }

    /// Sum of input sizes in bytes of a vertex (`λin_i`).
    pub fn input_bytes(&self, id: NodeId) -> u64 {
        self.nodes[id.0]
            .preds
            .iter()
            .map(|&p| self.nodes[p.0].output_bytes())
            .sum()
    }

    /// Validates structural invariants (acyclicity by construction,
    /// reachability of every vertex from `v0`, single input vertex, at
    /// least one output). Zoo builders are checked with this in tests.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        // Every non-input vertex must be reachable from v0.
        let mut reachable = vec![false; self.nodes.len()];
        reachable[0] = true;
        for n in &self.nodes {
            if n.id.0 == 0 {
                continue;
            }
            if n.preds.iter().any(|&p| reachable[p.0]) {
                reachable[n.id.0] = true;
            }
        }
        if let Some(i) = reachable.iter().position(|r| !r) {
            return Err(format!(
                "vertex {} (`{}`) unreachable from v0",
                NodeId(i),
                self.nodes[i].name
            ));
        }
        // Edges must be forward (topological by construction).
        for n in &self.nodes {
            for &p in &n.preds {
                if p.0 >= n.id.0 {
                    return Err(format!("non-topological edge {} -> {}", p, n.id));
                }
            }
        }
        if self.outputs().is_empty() {
            return Err("graph has no output vertex".into());
        }
        Ok(())
    }
}

/// Clones a borrowed graph into a fresh shared handle, so APIs taking
/// `impl Into<Arc<DnnGraph>>` (owned problems, the `D3System` builder)
/// keep accepting plain `&DnnGraph` references. Graphs hold structural
/// metadata only — no weights — so the clone is cheap.
impl From<&DnnGraph> for std::sync::Arc<DnnGraph> {
    fn from(graph: &DnnGraph) -> Self {
        std::sync::Arc::new(graph.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Activation;
    use d3_tensor::ops::ConvSpec;

    fn conv_kind(in_c: usize, out_c: usize) -> LayerKind {
        LayerKind::Conv {
            spec: ConvSpec::new(in_c, out_c, 3, 1, 1),
            batch_norm: false,
            activation: Activation::Relu,
        }
    }

    fn diamond() -> DnnGraph {
        // input -> a -> {b, c} -> add -> out
        let mut g = DnnGraph::new("diamond", Shape3::new(3, 8, 8));
        let a = g.chain("a", conv_kind(3, 8), g.input());
        let b = g.chain("b", conv_kind(8, 8), a);
        let c = g.chain("c", conv_kind(8, 8), a);
        let d = g.add_layer("d", LayerKind::Add, &[b, c]).unwrap();
        g.chain("out", LayerKind::Softmax, d);
        g
    }

    #[test]
    fn build_chain_graph() {
        let mut g = DnnGraph::new("chain", Shape3::new(3, 8, 8));
        let c1 = g.chain("c1", conv_kind(3, 4), g.input());
        let c2 = g.chain("c2", conv_kind(4, 4), c1);
        assert_eq!(g.len(), 3);
        assert!(g.is_chain());
        assert_eq!(g.node(c2).shape, Shape3::new(4, 8, 8));
        assert_eq!(g.outputs(), vec![c2]);
        g.validate().unwrap();
    }

    #[test]
    fn diamond_is_not_chain() {
        let g = diamond();
        assert!(!g.is_chain());
        g.validate().unwrap();
    }

    #[test]
    fn unknown_pred_rejected() {
        let mut g = DnnGraph::new("g", Shape3::new(3, 8, 8));
        let err = g
            .add_layer("x", conv_kind(3, 4), &[NodeId(99)])
            .unwrap_err();
        assert_eq!(err, GraphError::UnknownPredecessor(NodeId(99)));
    }

    #[test]
    fn empty_preds_rejected() {
        let mut g = DnnGraph::new("g", Shape3::new(3, 8, 8));
        assert!(matches!(
            g.add_layer("x", conv_kind(3, 4), &[]),
            Err(GraphError::MissingPredecessors(_))
        ));
    }

    #[test]
    fn shape_error_carries_layer_name() {
        let mut g = DnnGraph::new("g", Shape3::new(3, 8, 8));
        let err = g
            .add_layer("bad", conv_kind(5, 4), &[g.input()])
            .unwrap_err();
        match err {
            GraphError::Shape { layer, .. } => assert_eq!(layer, "bad"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn longest_distance_on_diamond() {
        let g = diamond();
        // input=0, a=1, b/c=2, add=3, softmax=4
        assert_eq!(g.longest_distances(), vec![0, 1, 2, 2, 3, 4]);
    }

    #[test]
    fn graph_layers_partition_vertices() {
        let g = diamond();
        let layers = g.graph_layers();
        assert_eq!(layers.len(), 5);
        assert_eq!(layers[0], vec![NodeId(0)]);
        assert_eq!(layers[2].len(), 2);
        let total: usize = layers.iter().map(Vec::len).sum();
        assert_eq!(total, g.len());
    }

    #[test]
    fn paper_fig3_grid_module_layering() {
        // Reproduce Fig. 3b: v0 -> v1 -> {v2..v5}; v2->v6, v3->v7,
        // v5->v8->v9 ... building the exact example from the paper and
        // checking HPA's 7 graph layers Z0..Z6.
        let mut g = DnnGraph::new("grid", Shape3::new(16, 8, 8));
        let conv1x1 = |c_in: usize| LayerKind::Conv {
            spec: ConvSpec::new(c_in, 16, 1, 1, 0),
            batch_norm: false,
            activation: Activation::Relu,
        };
        let v1 = g.chain("v1-concat-in", conv1x1(16), g.input());
        // Z2: four parallel branch heads.
        let v2 = g.chain("v2", conv1x1(16), v1);
        let v3 = g.chain("v3", conv1x1(16), v1);
        let v4 = g.chain("v4", conv1x1(16), v1);
        let v5 = g.chain("v5", conv1x1(16), v1);
        // Z3.
        let v6 = g.chain("v6", conv1x1(16), v3);
        let v7 = g.chain("v7", conv1x1(16), v4);
        let v8 = g.chain("v8", conv1x1(16), v5);
        let v9 = g.chain("v9", conv1x1(16), v8);
        // Z4: concat of branches.
        let v10 = g
            .add_layer("v10", LayerKind::Concat, &[v2, v6, v7, v9])
            .unwrap();
        // Z5.
        let v11 = g.chain("v11", conv1x1(64), v10);
        let v12 = g.chain("v12", conv1x1(64), v10);
        // Z6.
        g.add_layer("v13", LayerKind::Concat, &[v11, v12]).unwrap();

        let layers = g.graph_layers();
        // The paper groups v6..v9 into Z3; our faithful DAG has v9 one
        // deeper (v9 depends on v8), so Fig. 3b's Z3 = {v6,v7,v8,v9} holds
        // only under the paper's drawing where v8->v9 is within one module
        // stage. We verify the structural properties instead:
        assert_eq!(layers[0], vec![NodeId(0)]);
        assert_eq!(layers[2], vec![v2, v3, v4, v5]);
        assert!(layers[3].contains(&v6) && layers[3].contains(&v7) && layers[3].contains(&v8));
        assert!(layers[4].contains(&v9));
        let concat_layer = g.longest_distances()[v10.0];
        assert!(concat_layer > g.longest_distances()[v9.0]);
        g.validate().unwrap();
    }

    #[test]
    fn flops_totals_are_positive_and_additive() {
        let g = diamond();
        let sum: u64 = g.ids().map(|id| g.flops(id)).sum();
        assert_eq!(sum, g.total_flops());
        assert!(g.total_flops() > 0);
    }

    #[test]
    fn input_bytes_sums_predecessors() {
        let g = diamond();
        let add_id = NodeId(4);
        assert_eq!(g.node(add_id).kind, LayerKind::Add);
        // Two 8x8x8 f32 inputs.
        assert_eq!(g.input_bytes(add_id), 2 * 8 * 8 * 8 * 4);
    }

    #[test]
    fn links_count_matches() {
        let g = diamond();
        // input->a, a->b, a->c, b->d, c->d, d->out
        assert_eq!(g.links().len(), 6);
    }
}
