//! VGG-16 (Simonyan & Zisserman, 2014), configuration D:
//! 13 convolutions in 5 blocks with max-pools, then 3 fully-connected
//! layers. Layer names follow the paper's Fig. 1a: `conv1..conv13,
//! fc1..fc3`.

use super::Builder;
use crate::graph::DnnGraph;
use crate::layer::{Activation, LayerKind};

/// Per-block (repetitions, channels) of configuration D.
const BLOCKS: [(usize, usize); 5] = [(2, 64), (2, 128), (3, 256), (3, 512), (3, 512)];

/// Builds VGG-16 for a `3×hw×hw` input (1000-class classifier).
///
/// `hw` should be a multiple of 32 so the five pools divide evenly
/// (224 → 7, 64 → 2).
pub fn vgg16(hw: usize) -> DnnGraph {
    let mut b = Builder::new("vgg16", hw);
    let mut prev = b.g.input();
    let mut conv_idx = 1;
    for (block, (reps, ch)) in BLOCKS.iter().enumerate() {
        for _ in 0..*reps {
            prev = b.conv_relu(&format!("conv{conv_idx}"), prev, *ch, 3, 1, 1);
            conv_idx += 1;
        }
        prev = b.maxpool(&format!("maxpool{}", block + 1), prev, 2, 2, 0);
    }
    let f1 = b.dense("fc1", prev, 4096, Activation::Relu);
    let f2 = b.dense("fc2", f1, 4096, Activation::Relu);
    let f3 = b.dense("fc3", f2, 1000, Activation::None);
    b.g.chain("softmax", LayerKind::Softmax, f3);
    b.g
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_tensor::Shape3;

    #[test]
    fn sixteen_weight_layers() {
        let g = vgg16(224);
        let convs = g
            .nodes()
            .iter()
            .filter(|n| n.name.starts_with("conv"))
            .count();
        let fcs = g
            .nodes()
            .iter()
            .filter(|n| n.name.starts_with("fc"))
            .count();
        assert_eq!(convs, 13);
        assert_eq!(fcs, 3);
        assert!(g.is_chain());
    }

    #[test]
    fn canonical_shapes_at_224() {
        let g = vgg16(224);
        let shape_of = |name: &str| {
            g.nodes()
                .iter()
                .find(|n| n.name == name)
                .map(|n| n.shape)
                .unwrap()
        };
        assert_eq!(shape_of("conv2"), Shape3::new(64, 224, 224));
        assert_eq!(shape_of("maxpool1"), Shape3::new(64, 112, 112));
        assert_eq!(shape_of("conv13"), Shape3::new(512, 14, 14));
        assert_eq!(shape_of("maxpool5"), Shape3::new(512, 7, 7));
    }

    #[test]
    fn fc1_takes_25088_at_224() {
        let g = vgg16(224);
        let fc1 = g.nodes().iter().find(|n| n.name == "fc1").unwrap();
        match &fc1.kind {
            crate::layer::LayerKind::Dense { in_dim, .. } => assert_eq!(*in_dim, 25088),
            _ => panic!(),
        }
    }

    #[test]
    fn conv2_dominates_early_output_size() {
        // Fig. 1a: conv1/conv2 have the largest output volumes (~12.25 MB).
        let g = vgg16(224);
        let conv2 = g.nodes().iter().find(|n| n.name == "conv2").unwrap();
        assert_eq!(conv2.output_bytes(), 64 * 224 * 224 * 4);
    }

    #[test]
    fn scales_down_to_64() {
        let g = vgg16(64);
        g.validate().unwrap();
        let mp5 = g.nodes().iter().find(|n| n.name == "maxpool5").unwrap();
        assert_eq!(mp5.shape, Shape3::new(512, 2, 2));
    }
}
