//! Darknet-53 (Redmon & Farhadi, YOLOv3 backbone, 2018): 53 weighted
//! layers — 52 convolutions (every conv is conv+BN+LeakyReLU(0.1)) plus
//! the final classifier.
//!
//! The five downsampling stages carry 1, 2, 8, 8 and 4 residual blocks;
//! each residual is `1×1` (half channels) → `3×3` (restore) → add. Names
//! follow the paper's Fig. 1c grouping: `convN` for the stand-alone
//! convolutions and `residualK.*` for residual-group internals.

use super::Builder;
use crate::graph::{DnnGraph, NodeId};
use crate::layer::LayerKind;

fn residual(b: &mut Builder, name: &str, pred: NodeId) -> NodeId {
    let ch = b.g.node(pred).shape.c;
    let c1 = b.conv_bn_leaky(&format!("{name}.conv1"), pred, ch / 2, 1, 1, 0);
    let c2 = b.conv_bn_leaky(&format!("{name}.conv2"), c1, ch, 3, 1, 1);
    b.g.add_layer(format!("{name}.add"), LayerKind::Add, &[c2, pred])
        .expect("residual add")
}

/// Builds Darknet-53 for a `3×hw×hw` input (1000-class classifier).
pub fn darknet53(hw: usize) -> DnnGraph {
    let mut b = Builder::new("darknet53", hw);
    let input = b.g.input();
    let mut prev = b.conv_bn_leaky("conv1", input, 32, 3, 1, 1);
    // (stage channels, residual repetitions) per the YOLOv3 paper.
    let stages: [(usize, usize); 5] = [(64, 1), (128, 2), (256, 8), (512, 8), (1024, 4)];
    for (i, (ch, reps)) in stages.iter().enumerate() {
        prev = b.conv_bn_leaky(&format!("conv{}", i + 2), prev, *ch, 3, 2, 1);
        for r in 0..*reps {
            prev = residual(&mut b, &format!("residual{}.{r}", i + 1), prev);
        }
    }
    b.gap_classifier(prev, 1000);
    b.g
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_tensor::Shape3;

    #[test]
    fn fifty_two_convolutions() {
        let g = darknet53(224);
        let convs = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, LayerKind::Conv { .. }))
            .count();
        // 1 stem + 5 downsample + 2*23 residual convs = 52.
        assert_eq!(convs, 52);
        g.validate().unwrap();
    }

    #[test]
    fn twenty_three_residuals() {
        let g = darknet53(224);
        let adds = g
            .nodes()
            .iter()
            .filter(|n| n.kind == LayerKind::Add)
            .count();
        assert_eq!(adds, 1 + 2 + 8 + 8 + 4);
    }

    #[test]
    fn canonical_shapes_at_224() {
        let g = darknet53(224);
        let shape_of = |name: &str| {
            g.nodes()
                .iter()
                .find(|n| n.name == name)
                .map(|n| n.shape)
                .unwrap()
        };
        assert_eq!(shape_of("conv1"), Shape3::new(32, 224, 224));
        assert_eq!(shape_of("conv2"), Shape3::new(64, 112, 112));
        assert_eq!(shape_of("conv6"), Shape3::new(1024, 7, 7));
        assert_eq!(shape_of("residual5.3.add"), Shape3::new(1024, 7, 7));
        assert_eq!(shape_of("gap"), Shape3::new(1024, 1, 1));
    }

    #[test]
    fn residual_halves_then_restores_channels() {
        let g = darknet53(224);
        let c1 = g
            .nodes()
            .iter()
            .find(|n| n.name == "residual3.0.conv1")
            .unwrap();
        let c2 = g
            .nodes()
            .iter()
            .find(|n| n.name == "residual3.0.conv2")
            .unwrap();
        assert_eq!(c1.shape.c * 2, c2.shape.c);
    }
}
