//! A compact vision-transformer-style encoder: the zoo's non-CNN
//! workload, giving partitioners a topology CNN chains never produce.
//!
//! Each encoder block is the classic two-residual shape:
//!
//! ```text
//!        x ──┬─ q ─┐
//!            ├─ k ─┼─ concat ── mix ──┐
//!            ├─ v ─┘                  │
//!            └────────────────────── add (attn) ─┬─ mlp1 ── mlp2 ─┐
//!                                                └───────────────add
//! ```
//!
//! The attention core is structural, not numerical: `q`/`k`/`v` are
//! three dense projections fanning out of one vertex (fan-out 4
//! counting the residual edge), recombined by a channel `concat` and a
//! mixing projection, then closed by a residual `add` — the DAG shape
//! (wide fan-out, long residual skips) that makes DAG partitioners
//! (DADS/HPA) diverge from chain splitters, exercised end-to-end
//! through streaming and codecs. Dimensions stay honest: every dense
//! derives its input width from its predecessor, so the graph validates
//! at any input size.

use super::Builder;
use crate::graph::DnnGraph;
use crate::layer::{Activation, LayerKind};

/// Builds a `blocks`-deep transformer encoder over a `3×hw×hw` input:
/// a dense patch-embedding to `d_model` channels, the encoder blocks,
/// and a `classes`-way softmax head.
///
/// # Panics
///
/// Panics when `d_model`, `blocks` or `classes` is zero — a degenerate
/// encoder has no meaning in the zoo.
#[must_use]
pub fn transformer(hw: usize, d_model: usize, blocks: usize, classes: usize) -> DnnGraph {
    assert!(d_model > 0, "transformer d_model must be positive");
    assert!(blocks > 0, "transformer needs at least one block");
    assert!(classes > 0, "transformer classifier needs classes");
    let mut b = Builder::new("transformer", hw);
    let input = b.g.input();
    let mut x = b.dense("embed", input, d_model, Activation::None);
    for i in 1..=blocks {
        // Attention: q/k/v projections fan out of x, recombine through
        // concat + mix, and close over the residual edge.
        let q = b.dense(&format!("b{i}.q"), x, d_model, Activation::None);
        let k = b.dense(&format!("b{i}.k"), x, d_model, Activation::None);
        let v = b.dense(&format!("b{i}.v"), x, d_model, Activation::None);
        let qkv =
            b.g.add_layer(format!("b{i}.concat"), LayerKind::Concat, &[q, k, v])
                .expect("qkv concat");
        let mix = b.dense(&format!("b{i}.mix"), qkv, d_model, Activation::None);
        let attn =
            b.g.add_layer(format!("b{i}.attn_add"), LayerKind::Add, &[x, mix])
                .expect("attention residual");
        // MLP: expand 4×, contract, second residual.
        let mlp1 = b.dense(&format!("b{i}.mlp1"), attn, 4 * d_model, Activation::Relu);
        let mlp2 = b.dense(&format!("b{i}.mlp2"), mlp1, d_model, Activation::None);
        x =
            b.g.add_layer(format!("b{i}.mlp_add"), LayerKind::Add, &[attn, mlp2])
                .expect("mlp residual");
    }
    let head = b.dense("head", x, classes, Activation::None);
    b.g.chain("softmax", LayerKind::Softmax, head);
    b.g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_a_dag_with_residual_fanout() {
        let g = transformer(16, 32, 2, 100);
        g.validate().unwrap();
        assert!(!g.is_chain(), "residuals and qkv fan-out make it a DAG");
        // Each block contributes two Adds and one Concat.
        let count = |k: &LayerKind| g.nodes().iter().filter(|n| n.kind == *k).count();
        assert_eq!(count(&LayerKind::Add), 4);
        assert_eq!(count(&LayerKind::Concat), 2);
        // The block input fans out to q, k, v and the residual add.
        let embed = g
            .nodes()
            .iter()
            .position(|n| n.name == "embed")
            .expect("embed vertex");
        let fan_out = g
            .nodes()
            .iter()
            .filter(|n| n.preds.contains(&crate::graph::NodeId(embed)))
            .count();
        assert_eq!(fan_out, 4, "x feeds q, k, v and the attention add");
    }

    #[test]
    fn shapes_and_classifier_are_consistent() {
        let g = transformer(16, 64, 2, 100);
        let out = g.outputs();
        assert_eq!(out.len(), 1);
        assert_eq!(g.node(out[0]).shape.len(), 100);
        for n in g.nodes() {
            if n.name.ends_with(".concat") {
                assert_eq!(n.shape.c, 3 * 64, "concat stacks q/k/v channels");
            }
            if n.name.ends_with("_add") {
                assert_eq!(n.shape.c, 64, "residual adds keep d_model");
            }
        }
    }

    #[test]
    fn depth_scales_with_blocks() {
        // Each block adds 9 vertices: q, k, v, concat, mix, attn_add,
        // mlp1, mlp2, mlp_add.
        let one = transformer(8, 16, 1, 10);
        let three = transformer(8, 16, 3, 10);
        assert_eq!(three.len() - one.len(), 18);
        three.validate().unwrap();
    }
}
