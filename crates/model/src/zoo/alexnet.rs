//! AlexNet (Krizhevsky et al., 2012) — the classic single-tower variant:
//! 5 convolutions, 3 max-pools, 3 fully-connected layers.
//!
//! Layer names follow the paper's Fig. 4: `conv1, maxpool1, conv2,
//! maxpool2, conv3, conv4, conv5, maxpool3, fc1, fc2, fc3`.

use super::Builder;
use crate::graph::DnnGraph;
use crate::layer::{Activation, LayerKind};

/// Builds AlexNet for a `3×hw×hw` input (1000-class classifier).
pub fn alexnet(hw: usize) -> DnnGraph {
    let mut b = Builder::new("alexnet", hw);
    let input = b.g.input();
    let c1 = b.conv_relu("conv1", input, 96, 11, 4, 2);
    let p1 = b.maxpool("maxpool1", c1, 3, 2, 0);
    let c2 = b.conv_relu("conv2", p1, 256, 5, 1, 2);
    let p2 = b.maxpool("maxpool2", c2, 3, 2, 0);
    let c3 = b.conv_relu("conv3", p2, 384, 3, 1, 1);
    let c4 = b.conv_relu("conv4", c3, 384, 3, 1, 1);
    let c5 = b.conv_relu("conv5", c4, 256, 3, 1, 1);
    let p3 = b.maxpool("maxpool3", c5, 3, 2, 0);
    let f1 = b.dense("fc1", p3, 4096, Activation::Relu);
    let f2 = b.dense("fc2", f1, 4096, Activation::Relu);
    let f3 = b.dense("fc3", f2, 1000, Activation::None);
    b.g.chain("softmax", LayerKind::Softmax, f3);
    b.g
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_tensor::Shape3;

    #[test]
    fn topology_is_a_chain() {
        let g = alexnet(224);
        assert!(g.is_chain());
        // input + 5 conv + 3 pool + 3 fc + softmax = 13 vertices.
        assert_eq!(g.len(), 13);
    }

    #[test]
    fn canonical_shapes_at_224() {
        let g = alexnet(224);
        let shape_of = |name: &str| {
            g.nodes()
                .iter()
                .find(|n| n.name == name)
                .map(|n| n.shape)
                .unwrap()
        };
        assert_eq!(shape_of("conv1"), Shape3::new(96, 55, 55));
        assert_eq!(shape_of("maxpool1"), Shape3::new(96, 27, 27));
        assert_eq!(shape_of("conv2"), Shape3::new(256, 27, 27));
        assert_eq!(shape_of("maxpool2"), Shape3::new(256, 13, 13));
        assert_eq!(shape_of("conv5"), Shape3::new(256, 13, 13));
        assert_eq!(shape_of("maxpool3"), Shape3::new(256, 6, 6));
        assert_eq!(shape_of("fc1"), Shape3::new(4096, 1, 1));
        assert_eq!(shape_of("fc3"), Shape3::new(1000, 1, 1));
    }

    #[test]
    fn fc1_input_is_9216_at_224() {
        let g = alexnet(224);
        let fc1 = g.nodes().iter().find(|n| n.name == "fc1").unwrap();
        match &fc1.kind {
            crate::layer::LayerKind::Dense { in_dim, .. } => assert_eq!(*in_dim, 9216),
            _ => panic!("fc1 not dense"),
        }
    }
}
