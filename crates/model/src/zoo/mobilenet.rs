//! MobileNetV1 (Howard et al., 2017): depthwise-separable convolutions.
//!
//! Not one of the paper's five evaluation networks — included as the
//! reproduction's *extension* model: the depthwise-separable backbone is
//! the modern answer to the mobile-compute constraint the paper opens
//! with, and it exercises the depthwise tile-region path end to end
//! (VSM separates `dwconv → pwconv` stacks losslessly).

use super::Builder;
use crate::graph::{DnnGraph, NodeId};
use crate::layer::{Activation, LayerKind};
use d3_tensor::ops::DepthwiseSpec;

/// One depthwise-separable block: 3×3 depthwise (stride `s`) + 1×1
/// pointwise to `out_c` channels, both with BN+ReLU.
fn separable(b: &mut Builder, name: &str, pred: NodeId, out_c: usize, s: usize) -> NodeId {
    let ch = b.g.node(pred).shape.c;
    let dw = b.g.chain(
        format!("{name}.dw"),
        LayerKind::DepthwiseConv {
            spec: DepthwiseSpec::new(ch, 3, s, 1),
            batch_norm: true,
            activation: Activation::Relu,
        },
        pred,
    );
    b.conv_bn_relu(&format!("{name}.pw"), dw, out_c, 1, 1, 0)
}

/// Builds MobileNetV1 (width multiplier 1.0) for a `3×hw×hw` input.
pub fn mobilenet_v1(hw: usize) -> DnnGraph {
    let mut b = Builder::new("mobilenet_v1", hw);
    let input = b.g.input();
    let mut prev = b.conv_bn_relu("conv1", input, 32, 3, 2, 1);
    // (out channels, stride) per the MobileNetV1 paper's Table 1.
    let blocks: [(usize, usize); 13] = [
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2),
        (1024, 1),
    ];
    for (i, (out_c, s)) in blocks.iter().enumerate() {
        prev = separable(&mut b, &format!("sep{}", i + 1), prev, *out_c, *s);
    }
    b.gap_classifier(prev, 1000);
    b.g
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_tensor::Shape3;

    #[test]
    fn builds_and_validates() {
        let g = mobilenet_v1(224);
        g.validate().unwrap();
        assert!(g.is_chain(), "MobileNetV1 is a chain");
        // 1 stem conv + 13×(dw+pw) + gap + fc + softmax + input.
        assert_eq!(g.len(), 1 + 1 + 26 + 3);
    }

    #[test]
    fn canonical_shapes_at_224() {
        let g = mobilenet_v1(224);
        let shape_of = |name: &str| {
            g.nodes()
                .iter()
                .find(|n| n.name == name)
                .map(|n| n.shape)
                .unwrap()
        };
        assert_eq!(shape_of("conv1"), Shape3::new(32, 112, 112));
        assert_eq!(shape_of("sep1.pw"), Shape3::new(64, 112, 112));
        assert_eq!(shape_of("sep6.pw"), Shape3::new(512, 14, 14));
        assert_eq!(shape_of("sep13.pw"), Shape3::new(1024, 7, 7));
    }

    #[test]
    fn parameter_count_matches_published() {
        // MobileNetV1 1.0: ~4.2M parameters.
        let g = mobilenet_v1(224);
        let p = g.total_params() as f64;
        assert!((p - 4.2e6).abs() / 4.2e6 < 0.10, "{p:.2e} params");
    }

    #[test]
    fn flops_are_an_order_below_vgg() {
        // ~1.1 GFLOPs (569M MACs) at 224 vs VGG's ~31 GFLOPs.
        let g = mobilenet_v1(224);
        let f = g.total_flops() as f64;
        assert!(f > 0.8e9 && f < 1.8e9, "{f:.2e} FLOPs");
    }

    #[test]
    fn depthwise_layers_are_tileable() {
        let g = mobilenet_v1(224);
        for node in g.nodes() {
            if node.name.ends_with(".dw") {
                assert!(node.kind.is_tileable(), "{} not tileable", node.name);
            }
        }
    }
}
