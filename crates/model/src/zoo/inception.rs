//! Inception-v4 (Szegedy et al., AAAI 2017): stem, 4× Inception-A,
//! Reduction-A, 7× Inception-B, Reduction-B, 3× Inception-C, global
//! average pooling, 1000-way classifier.
//!
//! This is the paper's flagship multi-branch DAG (Fig. 3 shows the "grid
//! module" — the 8×8 Inception-C block — and its DAG representation).
//! All convolutions are conv+BN+ReLU. "V" (valid) convolutions of the
//! original paper use zero padding; "same" convolutions pad to preserve
//! spatial size.

use super::Builder;
use crate::graph::{DnnGraph, NodeId};
use crate::layer::LayerKind;
use d3_tensor::Shape3;

/// Stem: 3×hw×hw → 384×h'×w'.
fn stem(b: &mut Builder, pred: NodeId) -> NodeId {
    let c1 = b.conv_bn_relu("stem.conv1", pred, 32, 3, 2, 0);
    let c2 = b.conv_bn_relu("stem.conv2", c1, 32, 3, 1, 0);
    let c3 = b.conv_bn_relu("stem.conv3", c2, 64, 3, 1, 1);
    // Split 1: maxpool ‖ stride-2 conv.
    let p1 = b.maxpool("stem.pool1", c3, 3, 2, 0);
    let c4 = b.conv_bn_relu("stem.conv4", c3, 96, 3, 2, 0);
    let cat1 =
        b.g.add_layer("stem.concat1", LayerKind::Concat, &[p1, c4])
            .expect("stem concat1");
    // Split 2: short branch ‖ 7×1/1×7 factorized branch.
    let a1 = b.conv_bn_relu("stem.a.conv1", cat1, 64, 1, 1, 0);
    let a2 = b.conv_bn_relu("stem.a.conv2", a1, 96, 3, 1, 0);
    let b1 = b.conv_bn_relu("stem.b.conv1", cat1, 64, 1, 1, 0);
    let b2 = b.conv_rect("stem.b.conv2", b1, 64, 7, 1, 1, 3, 0);
    let b3 = b.conv_rect("stem.b.conv3", b2, 64, 1, 7, 1, 0, 3);
    let b4 = b.conv_bn_relu("stem.b.conv4", b3, 96, 3, 1, 0);
    let cat2 =
        b.g.add_layer("stem.concat2", LayerKind::Concat, &[a2, b4])
            .expect("stem concat2");
    // Split 3: stride-2 conv ‖ maxpool.
    let c5 = b.conv_bn_relu("stem.conv5", cat2, 192, 3, 2, 0);
    let p2 = b.maxpool("stem.pool2", cat2, 3, 2, 0);
    b.g.add_layer("stem.concat3", LayerKind::Concat, &[c5, p2])
        .expect("stem concat3")
}

/// Inception-A module: 384 → 384 channels, spatial-preserving.
fn inception_a(b: &mut Builder, p: &str, pred: NodeId) -> NodeId {
    let ap = b.avgpool(&format!("{p}.pool"), pred, 3, 1, 1);
    let b1 = b.conv_bn_relu(&format!("{p}.b1.conv"), ap, 96, 1, 1, 0);
    let b2 = b.conv_bn_relu(&format!("{p}.b2.conv"), pred, 96, 1, 1, 0);
    let b3a = b.conv_bn_relu(&format!("{p}.b3.conv1"), pred, 64, 1, 1, 0);
    let b3b = b.conv_bn_relu(&format!("{p}.b3.conv2"), b3a, 96, 3, 1, 1);
    let b4a = b.conv_bn_relu(&format!("{p}.b4.conv1"), pred, 64, 1, 1, 0);
    let b4b = b.conv_bn_relu(&format!("{p}.b4.conv2"), b4a, 96, 3, 1, 1);
    let b4c = b.conv_bn_relu(&format!("{p}.b4.conv3"), b4b, 96, 3, 1, 1);
    b.g.add_layer(
        format!("{p}.concat"),
        LayerKind::Concat,
        &[b1, b2, b3b, b4c],
    )
    .expect("inception-a concat")
}

/// Reduction-A: 384 → 1024 channels, spatial halving.
fn reduction_a(b: &mut Builder, p: &str, pred: NodeId) -> NodeId {
    let b1 = b.maxpool(&format!("{p}.pool"), pred, 3, 2, 0);
    let b2 = b.conv_bn_relu(&format!("{p}.b2.conv"), pred, 384, 3, 2, 0);
    let b3a = b.conv_bn_relu(&format!("{p}.b3.conv1"), pred, 192, 1, 1, 0);
    let b3b = b.conv_bn_relu(&format!("{p}.b3.conv2"), b3a, 224, 3, 1, 1);
    let b3c = b.conv_bn_relu(&format!("{p}.b3.conv3"), b3b, 256, 3, 2, 0);
    b.g.add_layer(format!("{p}.concat"), LayerKind::Concat, &[b1, b2, b3c])
        .expect("reduction-a concat")
}

/// Inception-B module: 1024 → 1024 channels, spatial-preserving.
fn inception_b(b: &mut Builder, p: &str, pred: NodeId) -> NodeId {
    let ap = b.avgpool(&format!("{p}.pool"), pred, 3, 1, 1);
    let b1 = b.conv_bn_relu(&format!("{p}.b1.conv"), ap, 128, 1, 1, 0);
    let b2 = b.conv_bn_relu(&format!("{p}.b2.conv"), pred, 384, 1, 1, 0);
    let b3a = b.conv_bn_relu(&format!("{p}.b3.conv1"), pred, 192, 1, 1, 0);
    let b3b = b.conv_rect(&format!("{p}.b3.conv2"), b3a, 224, 1, 7, 1, 0, 3);
    let b3c = b.conv_rect(&format!("{p}.b3.conv3"), b3b, 256, 7, 1, 1, 3, 0);
    let b4a = b.conv_bn_relu(&format!("{p}.b4.conv1"), pred, 192, 1, 1, 0);
    let b4b = b.conv_rect(&format!("{p}.b4.conv2"), b4a, 192, 1, 7, 1, 0, 3);
    let b4c = b.conv_rect(&format!("{p}.b4.conv3"), b4b, 224, 7, 1, 1, 3, 0);
    let b4d = b.conv_rect(&format!("{p}.b4.conv4"), b4c, 224, 1, 7, 1, 0, 3);
    let b4e = b.conv_rect(&format!("{p}.b4.conv5"), b4d, 256, 7, 1, 1, 3, 0);
    b.g.add_layer(
        format!("{p}.concat"),
        LayerKind::Concat,
        &[b1, b2, b3c, b4e],
    )
    .expect("inception-b concat")
}

/// Reduction-B: 1024 → 1536 channels, spatial halving.
fn reduction_b(b: &mut Builder, p: &str, pred: NodeId) -> NodeId {
    let b1 = b.maxpool(&format!("{p}.pool"), pred, 3, 2, 0);
    let b2a = b.conv_bn_relu(&format!("{p}.b2.conv1"), pred, 192, 1, 1, 0);
    let b2b = b.conv_bn_relu(&format!("{p}.b2.conv2"), b2a, 192, 3, 2, 0);
    let b3a = b.conv_bn_relu(&format!("{p}.b3.conv1"), pred, 256, 1, 1, 0);
    let b3b = b.conv_rect(&format!("{p}.b3.conv2"), b3a, 256, 1, 7, 1, 0, 3);
    let b3c = b.conv_rect(&format!("{p}.b3.conv3"), b3b, 320, 7, 1, 1, 3, 0);
    let b3d = b.conv_bn_relu(&format!("{p}.b3.conv4"), b3c, 320, 3, 2, 0);
    b.g.add_layer(format!("{p}.concat"), LayerKind::Concat, &[b1, b2b, b3d])
        .expect("reduction-b concat")
}

/// Inception-C — the paper's Fig. 3 "grid module": 1536 → 1536 channels.
fn inception_c(b: &mut Builder, p: &str, pred: NodeId) -> NodeId {
    let ap = b.avgpool(&format!("{p}.pool"), pred, 3, 1, 1);
    let b1 = b.conv_bn_relu(&format!("{p}.b1.conv"), ap, 256, 1, 1, 0);
    let b2 = b.conv_bn_relu(&format!("{p}.b2.conv"), pred, 256, 1, 1, 0);
    let b3a = b.conv_bn_relu(&format!("{p}.b3.conv1"), pred, 384, 1, 1, 0);
    let b3l = b.conv_rect(&format!("{p}.b3.conv1x3"), b3a, 256, 1, 3, 1, 0, 1);
    let b3r = b.conv_rect(&format!("{p}.b3.conv3x1"), b3a, 256, 3, 1, 1, 1, 0);
    let b4a = b.conv_bn_relu(&format!("{p}.b4.conv1"), pred, 384, 1, 1, 0);
    let b4b = b.conv_rect(&format!("{p}.b4.conv1x3"), b4a, 448, 1, 3, 1, 0, 1);
    let b4c = b.conv_rect(&format!("{p}.b4.conv3x1"), b4b, 512, 3, 1, 1, 1, 0);
    let b4l = b.conv_rect(&format!("{p}.b4.out3x1"), b4c, 256, 3, 1, 1, 1, 0);
    let b4r = b.conv_rect(&format!("{p}.b4.out1x3"), b4c, 256, 1, 3, 1, 0, 1);
    b.g.add_layer(
        format!("{p}.concat"),
        LayerKind::Concat,
        &[b1, b2, b3l, b3r, b4l, b4r],
    )
    .expect("inception-c concat")
}

/// Builds Inception-v4 for a `3×hw×hw` input (1000-class classifier).
///
/// The original network takes `299×299`; the D3 paper feeds `224×224`.
/// Any `hw ≥ 96` yields a valid graph (valid-padding stages shrink the
/// plane aggressively).
pub fn inception_v4(hw: usize) -> DnnGraph {
    let mut b = Builder::new("inception_v4", hw);
    let input = b.g.input();
    let mut prev = stem(&mut b, input);
    for i in 0..4 {
        prev = inception_a(&mut b, &format!("inceptionA{}", i + 1), prev);
    }
    prev = reduction_a(&mut b, "reductionA", prev);
    for i in 0..7 {
        prev = inception_b(&mut b, &format!("inceptionB{}", i + 1), prev);
    }
    prev = reduction_b(&mut b, "reductionB", prev);
    for i in 0..3 {
        prev = inception_c(&mut b, &format!("inceptionC{}", i + 1), prev);
    }
    b.gap_classifier(prev, 1000);
    b.g
}

/// Builds just the "grid module" of Fig. 3: a standalone Inception-C block
/// on a `1536×hw×hw` input. Used to reproduce the paper's graph-layering
/// example (Fig. 3b assigns its vertices to 7 graph layers `Z0..Z6`).
pub fn inception_grid_module(hw: usize) -> DnnGraph {
    let mut b = Builder {
        g: DnnGraph::new("grid_module", Shape3::new(1536, hw, hw)),
    };
    let input = b.g.input();
    inception_c(&mut b, "grid", input);
    b.g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_validates_at_224() {
        let g = inception_v4(224);
        g.validate().unwrap();
        assert!(!g.is_chain());
    }

    #[test]
    fn channel_milestones() {
        let g = inception_v4(224);
        let shape_of = |name: &str| {
            g.nodes()
                .iter()
                .find(|n| n.name == name)
                .map(|n| n.shape)
                .unwrap()
        };
        assert_eq!(shape_of("stem.concat3").c, 384);
        assert_eq!(shape_of("inceptionA4.concat").c, 384);
        assert_eq!(shape_of("reductionA.concat").c, 1024);
        assert_eq!(shape_of("inceptionB7.concat").c, 1024);
        assert_eq!(shape_of("reductionB.concat").c, 1536);
        assert_eq!(shape_of("inceptionC3.concat").c, 1536);
    }

    #[test]
    fn module_counts() {
        let g = inception_v4(224);
        let count = |prefix: &str| {
            g.nodes()
                .iter()
                .filter(|n| n.name.starts_with(prefix) && n.name.ends_with(".concat"))
                .count()
        };
        assert_eq!(count("inceptionA"), 4);
        assert_eq!(count("inceptionB"), 7);
        assert_eq!(count("inceptionC"), 3);
    }

    #[test]
    fn grid_module_standalone() {
        let g = inception_grid_module(8);
        g.validate().unwrap();
        // 1 input + 11 compute vertices + concat = 13 vertices — matching
        // the 13 non-virtual vertices v1..v13 of Fig. 3b.
        assert_eq!(g.len(), 13);
        let out = g.outputs()[0];
        assert_eq!(g.node(out).shape.c, 1536);
        // Fig. 3b: the module spans several graph layers.
        let layers = g.graph_layers();
        assert!(layers.len() >= 5, "grid module has {} layers", layers.len());
    }

    #[test]
    fn spatial_sizes_shrink_monotonically_through_reductions() {
        let g = inception_v4(224);
        let hw_of = |name: &str| {
            g.nodes()
                .iter()
                .find(|n| n.name == name)
                .map(|n| n.shape.h)
                .unwrap()
        };
        assert!(hw_of("stem.concat3") > hw_of("reductionA.concat"));
        assert!(hw_of("reductionA.concat") > hw_of("reductionB.concat"));
    }
}
