//! The model zoo: the five DNNs the paper evaluates (§IV, "Datasets and
//! models") plus small synthetic graphs used by tests and documentation.
//!
//! Every builder is parameterized by the input spatial size so that the
//! same topology can run structurally at the paper's `3×224×224` and
//! numerically (for losslessness tests) at small sizes. Classifier input
//! dimensions are derived from the actual conv-stack output shape, never
//! hard-coded.

mod alexnet;
mod darknet;
mod inception;
mod mobilenet;
mod resnet;
mod synthetic;
mod transformer;
mod vgg;

pub use alexnet::alexnet;
pub use darknet::darknet53;
pub use inception::{inception_grid_module, inception_v4};
pub use mobilenet::mobilenet_v1;
pub use resnet::resnet18;
pub use synthetic::{chain_cnn, conv_mlp, diamond_net, random_dag, tiny_cnn};
pub use transformer::transformer;
pub use vgg::vgg16;

use crate::graph::{DnnGraph, NodeId};
use crate::layer::{Activation, LayerKind};
use d3_tensor::ops::{ConvSpec, PoolKind, PoolSpec};

/// The paper's default input: ImageNet images compressed to `3×224×224`.
pub const IMAGENET_HW: usize = 224;

/// Builds all five evaluation models at the given input size, in the
/// paper's presentation order.
pub fn all_models(hw: usize) -> Vec<DnnGraph> {
    vec![
        alexnet(hw),
        vgg16(hw),
        resnet18(hw),
        darknet53(hw),
        inception_v4(hw),
    ]
}

/// Builds a zoo graph from a textual spec: a zoo name optionally
/// followed by `:`-separated integer arguments, e.g. `alexnet:224`,
/// `chain_cnn:6:8:16` (convs : channels : input size) or bare
/// `resnet18` (ImageNet input). This is how out-of-process stage
/// servers agree with their client on the exact graph: both sides build
/// from the same spec. Returns `None` for unknown names or
/// non-numeric arguments.
#[must_use]
pub fn by_spec(spec: &str) -> Option<DnnGraph> {
    let mut parts = spec.split(':');
    let name = parts.next()?;
    let args = parts
        .map(|p| p.parse::<usize>().ok())
        .collect::<Option<Vec<_>>>()?;
    let arg = |i: usize, default: usize| args.get(i).copied().unwrap_or(default);
    let graph = match name {
        "alexnet" => alexnet(arg(0, IMAGENET_HW)),
        "vgg16" => vgg16(arg(0, IMAGENET_HW)),
        "resnet18" => resnet18(arg(0, IMAGENET_HW)),
        "darknet53" => darknet53(arg(0, IMAGENET_HW)),
        "inception_v4" => inception_v4(arg(0, IMAGENET_HW)),
        "mobilenet_v1" => mobilenet_v1(arg(0, IMAGENET_HW)),
        "chain_cnn" => chain_cnn(arg(0, 4), arg(1, 8), arg(2, 16)),
        "conv_mlp" => conv_mlp(arg(0, 8)),
        "diamond_net" => diamond_net(arg(0, 8)),
        "tiny_cnn" => tiny_cnn(arg(0, 8)),
        "transformer" => transformer(arg(0, 16), arg(1, 64), arg(2, 2), arg(3, 100)),
        _ => return None,
    };
    Some(graph)
}

/// Human-readable display name for a zoo graph name.
pub fn display_name(name: &str) -> &'static str {
    match name {
        "alexnet" => "AlexNet",
        "vgg16" => "VGG-16",
        "resnet18" => "ResNet-18",
        "darknet53" => "Darknet-53",
        "inception_v4" => "Inception-v4",
        "mobilenet_v1" => "MobileNetV1",
        _ => "Unknown",
    }
}

/// Internal builder helpers shared by the zoo files.
pub(crate) struct Builder {
    pub g: DnnGraph,
}

impl Builder {
    pub(crate) fn new(name: &str, hw: usize) -> Self {
        Self {
            g: DnnGraph::new(name, d3_tensor::Shape3::new(3, hw, hw)),
        }
    }

    /// Conv + ReLU (no batch-norm): AlexNet/VGG style.
    pub(crate) fn conv_relu(
        &mut self,
        name: &str,
        pred: NodeId,
        out_c: usize,
        k: usize,
        s: usize,
        p: usize,
    ) -> NodeId {
        let in_c = self.g.node(pred).shape.c;
        self.g.chain(
            name,
            LayerKind::Conv {
                spec: ConvSpec::new(in_c, out_c, k, s, p),
                batch_norm: false,
                activation: Activation::Relu,
            },
            pred,
        )
    }

    /// Conv + BN + ReLU: ResNet style.
    pub(crate) fn conv_bn_relu(
        &mut self,
        name: &str,
        pred: NodeId,
        out_c: usize,
        k: usize,
        s: usize,
        p: usize,
    ) -> NodeId {
        let in_c = self.g.node(pred).shape.c;
        self.g.chain(
            name,
            LayerKind::Conv {
                spec: ConvSpec::new(in_c, out_c, k, s, p),
                batch_norm: true,
                activation: Activation::Relu,
            },
            pred,
        )
    }

    /// Conv + BN (linear): the second conv of a ResNet basic block.
    pub(crate) fn conv_bn(
        &mut self,
        name: &str,
        pred: NodeId,
        out_c: usize,
        k: usize,
        s: usize,
        p: usize,
    ) -> NodeId {
        let in_c = self.g.node(pred).shape.c;
        self.g.chain(
            name,
            LayerKind::Conv {
                spec: ConvSpec::new(in_c, out_c, k, s, p),
                batch_norm: true,
                activation: Activation::None,
            },
            pred,
        )
    }

    /// Conv + BN + LeakyReLU(0.1): Darknet style.
    pub(crate) fn conv_bn_leaky(
        &mut self,
        name: &str,
        pred: NodeId,
        out_c: usize,
        k: usize,
        s: usize,
        p: usize,
    ) -> NodeId {
        let in_c = self.g.node(pred).shape.c;
        self.g.chain(
            name,
            LayerKind::Conv {
                spec: ConvSpec::new(in_c, out_c, k, s, p),
                batch_norm: true,
                activation: Activation::Leaky(0.1),
            },
            pred,
        )
    }

    /// Rectangular conv + BN + ReLU (Inception 1×7 / 7×1 / 1×3 / 3×1).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn conv_rect(
        &mut self,
        name: &str,
        pred: NodeId,
        out_c: usize,
        kh: usize,
        kw: usize,
        s: usize,
        ph: usize,
        pw: usize,
    ) -> NodeId {
        let in_c = self.g.node(pred).shape.c;
        self.g.chain(
            name,
            LayerKind::Conv {
                spec: ConvSpec::rect(in_c, out_c, kh, kw, s, s, ph, pw),
                batch_norm: true,
                activation: Activation::Relu,
            },
            pred,
        )
    }

    pub(crate) fn maxpool(
        &mut self,
        name: &str,
        pred: NodeId,
        k: usize,
        s: usize,
        p: usize,
    ) -> NodeId {
        self.g.chain(
            name,
            LayerKind::Pool {
                spec: PoolSpec::new(PoolKind::Max, k, s, p),
            },
            pred,
        )
    }

    pub(crate) fn avgpool(
        &mut self,
        name: &str,
        pred: NodeId,
        k: usize,
        s: usize,
        p: usize,
    ) -> NodeId {
        self.g.chain(
            name,
            LayerKind::Pool {
                spec: PoolSpec::new(PoolKind::Avg, k, s, p),
            },
            pred,
        )
    }

    /// Dense layer whose input dimension is derived from the predecessor.
    pub(crate) fn dense(
        &mut self,
        name: &str,
        pred: NodeId,
        out_dim: usize,
        activation: Activation,
    ) -> NodeId {
        let in_dim = self.g.node(pred).shape.len();
        self.g.chain(
            name,
            LayerKind::Dense {
                in_dim,
                out_dim,
                activation,
            },
            pred,
        )
    }

    /// Classifier tail: global average pool → fc → softmax.
    pub(crate) fn gap_classifier(&mut self, pred: NodeId, classes: usize) -> NodeId {
        let gap = self.g.chain("gap", LayerKind::GlobalAvgPool, pred);
        let fc = self.dense("fc", gap, classes, Activation::None);
        self.g.chain("softmax", LayerKind::Softmax, fc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_validate_at_imagenet_size() {
        for g in all_models(IMAGENET_HW) {
            g.validate()
                .unwrap_or_else(|e| panic!("{} invalid: {e}", g.name()));
            assert_eq!(g.outputs().len(), 1, "{} must have one output", g.name());
            // Every classifier ends in softmax over 1000 classes.
            let out = g.outputs()[0];
            assert_eq!(g.node(out).shape.len(), 1000, "{} output classes", g.name());
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(display_name("vgg16"), "VGG-16");
        assert_eq!(display_name("nope"), "Unknown");
    }

    #[test]
    fn by_spec_builds_the_matching_graph() {
        let g = by_spec("chain_cnn:6:8:16").unwrap();
        assert_eq!(g.name(), "chain_cnn");
        assert_eq!(g.len(), chain_cnn(6, 8, 16).len());
        assert_eq!(by_spec("alexnet").unwrap().len(), alexnet(224).len());
        assert_eq!(by_spec("tiny_cnn:8").unwrap().name(), "tiny_cnn");
        assert!(by_spec("no_such_model").is_none());
        assert!(by_spec("chain_cnn:not_a_number").is_none());
    }

    #[test]
    fn model_scale_sanity() {
        // Published parameter counts (±10%): AlexNet ~61M, VGG-16 ~138M,
        // ResNet-18 ~11.7M, Darknet-53 ~41.6M, Inception-v4 ~42.7M.
        let expect = [
            ("alexnet", 61.0e6, 0.12),
            ("vgg16", 138.0e6, 0.10),
            ("resnet18", 11.7e6, 0.10),
            ("darknet53", 41.6e6, 0.10),
            ("inception_v4", 42.7e6, 0.15),
        ];
        for (name, want, tol) in expect {
            let g = all_models(IMAGENET_HW)
                .into_iter()
                .find(|g| g.name() == name)
                .unwrap();
            let got = g.total_params() as f64;
            assert!(
                (got - want).abs() / want < tol,
                "{name}: {got:.2e} params, expected ~{want:.2e}"
            );
        }
    }

    #[test]
    fn flops_ordering_matches_published_scale() {
        // Single-inference FLOPs at 224: AlexNet ~1.4G, ResNet-18 ~3.6G,
        // VGG-16 ~31G. Check ordering + rough magnitude.
        let models = all_models(IMAGENET_HW);
        let f = |n: &str| models.iter().find(|g| g.name() == n).unwrap().total_flops() as f64;
        assert!(f("alexnet") < f("resnet18"));
        assert!(f("resnet18") < f("darknet53"));
        assert!(f("darknet53") < f("vgg16"));
        assert!(f("vgg16") > 25e9 && f("vgg16") < 40e9);
        assert!(f("alexnet") > 0.8e9 && f("alexnet") < 3e9);
    }

    #[test]
    fn models_build_at_small_sizes() {
        // Numerical tests run the zoo at reduced input sizes.
        for g in all_models(96) {
            g.validate().unwrap();
        }
    }
}
