//! ResNet-18 (He et al., 2016): a 7×7 stem, four stages of two basic
//! blocks each, global average pooling and a 1000-way classifier.
//!
//! Block names follow the paper's Fig. 1b grouping: `block1..block8`
//! (two blocks per stage), with per-block internals named
//! `blockN.conv1`, `blockN.conv2`, `blockN.down`, `blockN.add`,
//! `blockN.relu`.

use super::Builder;
use crate::graph::{DnnGraph, NodeId};
use crate::layer::{Activation, LayerKind};

/// Adds one basic block; `stride` > 1 downsamples (with a 1×1 projection
/// shortcut as in the original paper).
fn basic_block(b: &mut Builder, name: &str, pred: NodeId, out_c: usize, stride: usize) -> NodeId {
    let c1 = b.conv_bn_relu(&format!("{name}.conv1"), pred, out_c, 3, stride, 1);
    let c2 = b.conv_bn(&format!("{name}.conv2"), c1, out_c, 3, 1, 1);
    let shortcut = if stride != 1 || b.g.node(pred).shape.c != out_c {
        b.conv_bn(&format!("{name}.down"), pred, out_c, 1, stride, 0)
    } else {
        pred
    };
    let sum =
        b.g.add_layer(format!("{name}.add"), LayerKind::Add, &[c2, shortcut])
            .expect("residual add");
    b.g.chain(
        format!("{name}.relu"),
        LayerKind::Activation {
            act: Activation::Relu,
        },
        sum,
    )
}

/// Builds ResNet-18 for a `3×hw×hw` input (1000-class classifier).
pub fn resnet18(hw: usize) -> DnnGraph {
    let mut b = Builder::new("resnet18", hw);
    let input = b.g.input();
    let c1 = b.conv_bn_relu("conv1", input, 64, 7, 2, 3);
    let mut prev = b.maxpool("maxpool1", c1, 3, 2, 1);
    let stages = [(64, 1), (128, 2), (256, 2), (512, 2)];
    let mut block_idx = 1;
    for (ch, first_stride) in stages {
        prev = basic_block(&mut b, &format!("block{block_idx}"), prev, ch, first_stride);
        block_idx += 1;
        prev = basic_block(&mut b, &format!("block{block_idx}"), prev, ch, 1);
        block_idx += 1;
    }
    b.gap_classifier(prev, 1000);
    b.g
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_tensor::Shape3;

    #[test]
    fn has_eight_blocks_and_is_dag() {
        let g = resnet18(224);
        assert!(!g.is_chain(), "residual shortcuts make it a DAG");
        let adds = g
            .nodes()
            .iter()
            .filter(|n| n.kind == LayerKind::Add)
            .count();
        assert_eq!(adds, 8);
        g.validate().unwrap();
    }

    #[test]
    fn canonical_shapes_at_224() {
        let g = resnet18(224);
        let shape_of = |name: &str| {
            g.nodes()
                .iter()
                .find(|n| n.name == name)
                .map(|n| n.shape)
                .unwrap()
        };
        assert_eq!(shape_of("conv1"), Shape3::new(64, 112, 112));
        assert_eq!(shape_of("maxpool1"), Shape3::new(64, 56, 56));
        assert_eq!(shape_of("block2.relu"), Shape3::new(64, 56, 56));
        assert_eq!(shape_of("block4.relu"), Shape3::new(128, 28, 28));
        assert_eq!(shape_of("block8.relu"), Shape3::new(512, 7, 7));
        assert_eq!(shape_of("gap"), Shape3::new(512, 1, 1));
    }

    #[test]
    fn twenty_convolutions() {
        // 17 weight convs + 3 downsample projections.
        let g = resnet18(224);
        let convs = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, LayerKind::Conv { .. }))
            .count();
        assert_eq!(convs, 20);
    }

    #[test]
    fn downsample_only_on_stage_transitions() {
        let g = resnet18(224);
        let downs: Vec<&str> = g
            .nodes()
            .iter()
            .filter(|n| n.name.ends_with(".down"))
            .map(|n| n.name.as_str())
            .collect();
        assert_eq!(downs, vec!["block3.down", "block5.down", "block7.down"]);
    }
}
