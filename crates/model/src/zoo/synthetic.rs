//! Small synthetic graphs for tests, property tests and documentation
//! examples. These are *not* paper models; they exist so algorithm tests
//! can run fast and so proptest can explore many topologies.

use crate::graph::{DnnGraph, NodeId};
use crate::layer::{Activation, LayerKind};
use d3_tensor::ops::{ConvSpec, PoolKind, PoolSpec};
use d3_tensor::Shape3;

fn conv_kind(in_c: usize, out_c: usize, k: usize, s: usize, p: usize) -> LayerKind {
    LayerKind::Conv {
        spec: ConvSpec::new(in_c, out_c, k, s, p),
        batch_norm: false,
        activation: Activation::Relu,
    }
}

/// A chain CNN: `n_convs` 3×3 convolutions with `ch` channels, then
/// GAP → fc → softmax. Chain topology (Neurosurgeon-compatible).
pub fn chain_cnn(n_convs: usize, ch: usize, hw: usize) -> DnnGraph {
    let mut g = DnnGraph::new("chain_cnn", Shape3::new(3, hw, hw));
    let mut prev = g.chain("conv1", conv_kind(3, ch, 3, 1, 1), g.input());
    for i in 1..n_convs {
        prev = g.chain(format!("conv{}", i + 1), conv_kind(ch, ch, 3, 1, 1), prev);
    }
    let gap = g.chain("gap", LayerKind::GlobalAvgPool, prev);
    let fc = g.chain(
        "fc",
        LayerKind::Dense {
            in_dim: ch,
            out_dim: 10,
            activation: Activation::None,
        },
        gap,
    );
    g.chain("softmax", LayerKind::Softmax, fc);
    g
}

/// A conv front-end with a wide MLP head — the weight-heavy
/// classifier-tail shape of AlexNet/VGG in miniature. Used by streaming
/// benchmarks: per-frame weight rebuilding dominates one-shot execution
/// of this graph, so executors that prebuild weights (sessions, pipeline
/// stages) show their advantage clearly.
pub fn conv_mlp(hw: usize) -> DnnGraph {
    let mut g = DnnGraph::new("conv_mlp", Shape3::new(3, hw, hw));
    let c = g.chain("conv1", conv_kind(3, 16, 3, 1, 1), g.input());
    let d1 = g.chain(
        "fc1",
        LayerKind::Dense {
            in_dim: 16 * hw * hw,
            out_dim: 4096,
            activation: Activation::Relu,
        },
        c,
    );
    let d2 = g.chain(
        "fc2",
        LayerKind::Dense {
            in_dim: 4096,
            out_dim: 4096,
            activation: Activation::Relu,
        },
        d1,
    );
    g.chain(
        "fc3",
        LayerKind::Dense {
            in_dim: 4096,
            out_dim: 10,
            activation: Activation::None,
        },
        d2,
    );
    g
}

/// A diamond DAG: one conv fans out to two branches that re-join with an
/// elementwise add. The smallest non-chain topology.
pub fn diamond_net(hw: usize) -> DnnGraph {
    let mut g = DnnGraph::new("diamond_net", Shape3::new(3, hw, hw));
    let stem = g.chain("stem", conv_kind(3, 8, 3, 1, 1), g.input());
    let left = g.chain("left", conv_kind(8, 8, 3, 1, 1), stem);
    let right = g.chain("right", conv_kind(8, 8, 1, 1, 0), stem);
    let join = g.add_layer("join", LayerKind::Add, &[left, right]).unwrap();
    let gap = g.chain("gap", LayerKind::GlobalAvgPool, join);
    let fc = g.chain(
        "fc",
        LayerKind::Dense {
            in_dim: 8,
            out_dim: 4,
            activation: Activation::None,
        },
        gap,
    );
    g.chain("softmax", LayerKind::Softmax, fc);
    g
}

/// A tiny all-tileable CNN (convs and pools only, ending in GAP/fc):
/// used by VSM tests that need an edge segment of consecutive spatial
/// layers.
pub fn tiny_cnn(hw: usize) -> DnnGraph {
    let mut g = DnnGraph::new("tiny_cnn", Shape3::new(3, hw, hw));
    let c1 = g.chain("conv1", conv_kind(3, 8, 3, 1, 1), g.input());
    let p1 = g.chain(
        "pool1",
        LayerKind::Pool {
            spec: PoolSpec::new(PoolKind::Max, 2, 2, 0),
        },
        c1,
    );
    let c2 = g.chain("conv2", conv_kind(8, 16, 3, 1, 1), p1);
    let c3 = g.chain("conv3", conv_kind(16, 16, 3, 1, 1), c2);
    let gap = g.chain("gap", LayerKind::GlobalAvgPool, c3);
    let fc = g.chain(
        "fc",
        LayerKind::Dense {
            in_dim: 16,
            out_dim: 10,
            activation: Activation::None,
        },
        gap,
    );
    g.chain("softmax", LayerKind::Softmax, fc);
    g
}

/// A pseudo-random layered DAG for property tests.
///
/// Deterministic in `seed`. The graph has `width`-bounded layers,
/// branch/join structure (concat joins), and every vertex reachable from
/// `v0`. Shapes are kept spatial-preserving so arbitrary topologies stay
/// valid.
pub fn random_dag(seed: u64, depth: usize, width: usize, hw: usize) -> DnnGraph {
    assert!(depth >= 1 && width >= 1);
    // Simple xorshift so we avoid a rand dependency in non-test code.
    let mut state = seed.wrapping_mul(2685821657736338717).wrapping_add(1);
    let mut next = move |m: usize| -> usize {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % m as u64) as usize
    };
    let ch = 8;
    let mut g = DnnGraph::new("random_dag", Shape3::new(ch, hw, hw));
    let mut frontier: Vec<NodeId> = vec![g.input()];
    let mut idx = 0;
    for _ in 0..depth {
        let n_here = 1 + next(width);
        let mut new_frontier = Vec::new();
        for _ in 0..n_here {
            idx += 1;
            let pred = frontier[next(frontier.len())];
            let in_c = g.node(pred).shape.c;
            let id = g.chain(format!("n{idx}"), conv_kind(in_c, ch, 3, 1, 1), pred);
            new_frontier.push(id);
        }
        // Keep un-consumed old frontier vertices alive so they join later.
        for &old in &frontier {
            if g.node(old).succs.is_empty() {
                new_frontier.push(old);
            }
        }
        frontier = new_frontier;
    }
    // Join all loose ends with a concat (or pass through when single).
    let ends: Vec<NodeId> = g.ids().filter(|&id| g.node(id).succs.is_empty()).collect();
    let tail = if ends.len() > 1 {
        g.add_layer("join", LayerKind::Concat, &ends).unwrap()
    } else {
        ends[0]
    };
    let gap = g.chain("gap", LayerKind::GlobalAvgPool, tail);
    let c = g.node(gap).shape.len();
    let fc = g.chain(
        "fc",
        LayerKind::Dense {
            in_dim: c,
            out_dim: 4,
            activation: Activation::None,
        },
        gap,
    );
    g.chain("softmax", LayerKind::Softmax, fc);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_cnn_is_chain() {
        let g = chain_cnn(4, 8, 16);
        assert!(g.is_chain());
        assert_eq!(g.len(), 1 + 4 + 3);
        g.validate().unwrap();
    }

    #[test]
    fn diamond_is_dag() {
        let g = diamond_net(16);
        assert!(!g.is_chain());
        g.validate().unwrap();
    }

    #[test]
    fn tiny_cnn_valid() {
        tiny_cnn(16).validate().unwrap();
    }

    #[test]
    fn random_dags_always_validate() {
        for seed in 0..50 {
            let g = random_dag(seed, 4, 3, 8);
            g.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn random_dag_deterministic() {
        let a = random_dag(7, 3, 2, 8);
        let b = random_dag(7, 3, 2, 8);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.links(), b.links());
    }
}
