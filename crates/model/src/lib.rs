//! # d3-model
//!
//! DNN model representation for the D3 reproduction (ICDCS 2021):
//!
//! - [`layer`]: layer kinds with shape inference, FLOP and parameter
//!   accounting,
//! - [`graph`]: the DAG `G = (V, L)` of the paper's system model (§III-C),
//!   including the longest-distance layering `Z_q` that drives HPA,
//! - [`exec`]: a reference executor with deterministic pseudo-trained
//!   weights, able to run whole networks and HPA *segments*, plus the
//!   owned [`SegmentExecutor`] that prebuilds a segment's weights for
//!   long-lived pipeline-stage workers,
//! - [`zoo`]: the five evaluation networks — AlexNet, VGG-16, ResNet-18,
//!   Darknet-53 and Inception-v4 — plus synthetic test graphs.
//!
//! ## Example
//!
//! ```
//! use d3_model::zoo;
//!
//! let vgg = zoo::vgg16(224);
//! let layers = vgg.graph_layers();
//! assert_eq!(layers[0].len(), 1); // Z0 = {v0}
//! assert!(vgg.is_chain());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod graph;
pub mod layer;
pub mod zoo;

pub use exec::{crossing_tensors, walk_segment, Executor, LayerOp, SegmentExecutor};
pub use graph::{DnnGraph, GraphError, Node, NodeId};
pub use layer::{Activation, LayerKind};
