//! Reference graph executor.
//!
//! Runs a [`DnnGraph`] on real tensors with deterministic pseudo-trained
//! weights (seeded per vertex), standing in for the paper's ONNX/PyTorch
//! stack. The executor provides:
//!
//! - whole-network inference ([`Executor::run`]),
//! - *segment* execution ([`Executor::run_segment`]) — exactly what a
//!   device/edge/cloud node does with its HPA partition: consume boundary
//!   tensors, produce the tensors that cross to the next tier,
//! - per-vertex operator construction ([`Executor::build_op`]) so the
//!   vertical separation module can execute conv stacks tile-by-tile with
//!   the *same* weights, making losslessness checks meaningful,
//! - an owned, cheaply cloneable [`SegmentExecutor`] that materializes a
//!   segment's weights **once** and can then move into long-lived worker
//!   threads — the per-stage engine of the streaming serving pipeline.

use crate::graph::{DnnGraph, NodeId};
use crate::layer::{Activation, LayerKind};
use d3_tensor::ops::{
    add, concat_channels, global_avg_pool, leaky_relu, relu, softmax, BatchNorm, Conv2d, Dense,
    DepthwiseConv2d, Pool2d,
};
use d3_tensor::Tensor;
use std::collections::HashMap;
use std::sync::Arc;

/// A materialized operator for one vertex.
#[derive(Debug, Clone)]
pub enum LayerOp {
    /// Identity (the virtual input vertex).
    Input,
    /// Convolution with optional folded batch-norm and activation.
    Conv {
        /// The convolution kernel.
        conv: Conv2d,
        /// Folded batch-norm, when the layer declares one.
        bn: Option<BatchNorm>,
        /// Fused activation.
        activation: Activation,
    },
    /// Depthwise convolution with optional folded batch-norm and
    /// activation.
    Depthwise {
        /// The depthwise kernel.
        conv: DepthwiseConv2d,
        /// Folded batch-norm, when declared.
        bn: Option<BatchNorm>,
        /// Fused activation.
        activation: Activation,
    },
    /// Pooling.
    Pool(Pool2d),
    /// Global average pooling.
    GlobalAvgPool,
    /// Fully-connected with fused activation.
    Dense {
        /// The dense kernel.
        dense: Dense,
        /// Fused activation.
        activation: Activation,
    },
    /// Channel concatenation.
    Concat,
    /// Elementwise addition.
    Add,
    /// Softmax.
    Softmax,
    /// Standalone elementwise activation.
    Activation(Activation),
}

impl LayerOp {
    /// Applies the operator to the (ordered) predecessor outputs.
    ///
    /// # Panics
    ///
    /// Panics when the input arity does not match the operator.
    pub fn apply(&self, inputs: &[&Tensor]) -> Tensor {
        match self {
            LayerOp::Input => inputs[0].clone(),
            LayerOp::Conv {
                conv,
                bn,
                activation,
            } => {
                let mut out = conv.forward(inputs[0]);
                if let Some(bn) = bn {
                    out = bn.forward(&out);
                }
                apply_activation(&out, *activation)
            }
            LayerOp::Depthwise {
                conv,
                bn,
                activation,
            } => {
                let mut out = conv.forward(inputs[0]);
                if let Some(bn) = bn {
                    out = bn.forward(&out);
                }
                apply_activation(&out, *activation)
            }
            LayerOp::Pool(p) => p.forward(inputs[0]),
            LayerOp::GlobalAvgPool => global_avg_pool(inputs[0]),
            LayerOp::Dense { dense, activation } => {
                let out = dense.forward(&inputs[0].flatten());
                apply_activation(&out, *activation)
            }
            LayerOp::Concat => concat_channels(inputs),
            LayerOp::Add => add(inputs),
            LayerOp::Softmax => softmax(inputs[0]),
            LayerOp::Activation(a) => apply_activation(inputs[0], *a),
        }
    }
}

fn apply_activation(t: &Tensor, a: Activation) -> Tensor {
    match a {
        Activation::None => t.clone(),
        Activation::Relu => relu(t),
        Activation::Leaky(alpha) => leaky_relu(t, alpha),
    }
}

/// Deterministic per-vertex weight seed.
fn node_seed(base: u64, id: NodeId) -> u64 {
    base ^ (id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Executes a [`DnnGraph`] with deterministic pseudo-trained weights.
pub struct Executor<'g> {
    graph: &'g DnnGraph,
    seed: u64,
}

impl<'g> Executor<'g> {
    /// Creates an executor; `seed` determines every layer's weights.
    pub fn new(graph: &'g DnnGraph, seed: u64) -> Self {
        Self { graph, seed }
    }

    /// The graph being executed.
    pub fn graph(&self) -> &DnnGraph {
        self.graph
    }

    /// Materializes the operator for a vertex (weights are regenerated
    /// deterministically each call; callers that execute repeatedly should
    /// hold on to the result).
    pub fn build_op(&self, id: NodeId) -> LayerOp {
        let node = self.graph.node(id);
        let seed = node_seed(self.seed, id);
        match &node.kind {
            LayerKind::Input { .. } => LayerOp::Input,
            LayerKind::Conv {
                spec,
                batch_norm,
                activation,
            } => LayerOp::Conv {
                conv: Conv2d::random(*spec, seed),
                bn: batch_norm.then(|| BatchNorm::random(spec.out_c, seed ^ 0xBAD_CAFE)),
                activation: *activation,
            },
            LayerKind::DepthwiseConv {
                spec,
                batch_norm,
                activation,
            } => LayerOp::Depthwise {
                conv: DepthwiseConv2d::random(*spec, seed),
                bn: batch_norm.then(|| BatchNorm::random(spec.channels, seed ^ 0xBAD_CAFE)),
                activation: *activation,
            },
            LayerKind::Pool { spec } => LayerOp::Pool(Pool2d::new(*spec)),
            LayerKind::GlobalAvgPool => LayerOp::GlobalAvgPool,
            LayerKind::Dense {
                in_dim,
                out_dim,
                activation,
            } => LayerOp::Dense {
                dense: Dense::random(*in_dim, *out_dim, seed),
                activation: *activation,
            },
            LayerKind::Concat => LayerOp::Concat,
            LayerKind::Add => LayerOp::Add,
            LayerKind::Softmax => LayerOp::Softmax,
            LayerKind::Activation { act } => LayerOp::Activation(*act),
        }
    }

    /// Runs the whole network, returning the single output tensor.
    ///
    /// # Panics
    ///
    /// Panics when the input shape differs from `v0`'s shape or when the
    /// graph has multiple outputs (use [`Executor::run_all`] then).
    pub fn run(&self, input: &Tensor) -> Tensor {
        let outputs = self.graph.outputs();
        assert_eq!(outputs.len(), 1, "run() requires a single-output graph");
        self.run_all(input).remove(&outputs[0]).expect("output")
    }

    /// Runs the whole network, returning every output vertex's tensor.
    pub fn run_all(&self, input: &Tensor) -> HashMap<NodeId, Tensor> {
        assert_eq!(
            input.shape3(),
            self.graph.input_shape(),
            "input shape mismatch"
        );
        let members: Vec<NodeId> = self.graph.ids().collect();
        let mut boundary = HashMap::new();
        boundary.insert(self.graph.input(), input.clone());
        let mut result = self.run_segment(&members, &boundary);
        // run_segment returns tensors that leave the set; for the full set
        // these are exactly the graph outputs.
        result.retain(|id, _| self.graph.node(*id).succs.is_empty());
        result
    }

    /// Executes the sub-graph induced by `members` (which must be closed
    /// under "predecessor also in members OR provided as boundary input").
    ///
    /// `boundary` maps vertices *outside* the segment (or the segment's own
    /// already-computed members, e.g. `v0`) to their output tensors; these
    /// are the tensors a tier receives over the network.
    ///
    /// Returns the outputs of every member whose result is needed outside
    /// the segment: vertices with a successor not in `members`, plus graph
    /// outputs. This is exactly the data a computing tier must transmit
    /// onward.
    ///
    /// # Panics
    ///
    /// Panics when a required predecessor tensor is neither computable nor
    /// provided.
    pub fn run_segment(
        &self,
        members: &[NodeId],
        boundary: &HashMap<NodeId, Tensor>,
    ) -> HashMap<NodeId, Tensor> {
        let mut values: HashMap<NodeId, Tensor> = boundary.clone();
        let mut sorted: Vec<NodeId> = members.to_vec();
        sorted.sort(); // ids are topological
        walk_segment(
            self.graph,
            &sorted,
            &mut values,
            |_, _| false,
            |id, inputs| self.build_op(id).apply(inputs),
        );
        crossing_tensors(self.graph, &sorted, &values)
    }
}

/// Walks a segment's members in topological order, executing each one.
///
/// This is the single execution loop shared by every segment executor
/// (the borrowed [`Executor::run_segment`], the owned
/// [`SegmentExecutor::run`], and the engine's per-frame and streaming
/// VSM stages): members already present in `values` (boundary tensors,
/// or values materialized by an earlier hook call) are skipped; for each
/// remaining member the walker first offers the vertex to `hook`, which
/// may fully handle it (e.g. execute a whole tiled run, or skip a run
/// interior) and return `true`; otherwise the member's predecessor
/// tensors are gathered and `apply` produces its output.
///
/// `members` must be sorted ascending (ids are topological).
///
/// # Panics
///
/// Panics when a member's predecessor tensor is neither in `values` nor
/// produced by an earlier member — the segment is not closed under its
/// boundary.
pub fn walk_segment<H, A>(
    graph: &DnnGraph,
    members: &[NodeId],
    values: &mut HashMap<NodeId, Tensor>,
    mut hook: H,
    mut apply: A,
) where
    H: FnMut(NodeId, &mut HashMap<NodeId, Tensor>) -> bool,
    A: FnMut(NodeId, &[&Tensor]) -> Tensor,
{
    for &id in members {
        if values.contains_key(&id) {
            continue; // provided as boundary, or produced by a hook
        }
        if hook(id, values) {
            continue; // fully handled (tiled run head or interior)
        }
        let node = graph.node(id);
        let inputs: Vec<&Tensor> = node
            .preds
            .iter()
            .map(|p| {
                values.get(p).unwrap_or_else(|| {
                    panic!(
                        "segment execution of {} (`{}`) missing predecessor {}",
                        id, node.name, p
                    )
                })
            })
            .collect();
        let out = apply(id, &inputs);
        debug_assert_eq!(out.shape3(), node.shape, "shape inference mismatch at {id}");
        values.insert(id, out);
    }
}

/// Filters `values` down to the tensors that must leave the segment:
/// every member with a successor outside `members`, plus graph outputs —
/// exactly the data a computing tier transmits onward. Shared by every
/// segment executor (borrowed, owned, and the streaming VSM stage) so
/// the crossing rule lives in one place.
pub fn crossing_tensors(
    graph: &DnnGraph,
    members: &[NodeId],
    values: &HashMap<NodeId, Tensor>,
) -> HashMap<NodeId, Tensor> {
    let member_set: std::collections::HashSet<NodeId> = members.iter().copied().collect();
    let mut result = HashMap::new();
    for &id in members {
        let node = graph.node(id);
        let needed_outside =
            node.succs.is_empty() || node.succs.iter().any(|s| !member_set.contains(s));
        if needed_outside {
            if let Some(t) = values.get(&id) {
                result.insert(id, t.clone());
            }
        }
    }
    result
}

/// An owned executor for one tier's segment of the graph.
///
/// [`Executor`] borrows its graph and rebuilds weights on every
/// [`build_op`](Executor::build_op) call — fine for one-shot inference,
/// wasteful for a pipeline stage serving thousands of frames. A
/// `SegmentExecutor` owns the graph through an [`Arc`] and materializes
/// every member's operator (weights included) **once** at construction,
/// so it is `Send + Sync + 'static`, cheap to clone per worker, and its
/// per-frame cost is pure tensor arithmetic.
///
/// Operators are seeded exactly like [`Executor::build_op`], so outputs
/// stay bit-identical to whole-network single-node inference.
#[derive(Clone)]
pub struct SegmentExecutor {
    graph: Arc<DnnGraph>,
    seed: u64,
    /// Segment members, ascending (ids are topological).
    members: Vec<NodeId>,
    ops: HashMap<NodeId, LayerOp>,
}

impl std::fmt::Debug for SegmentExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentExecutor")
            .field("graph", &self.graph.name())
            .field("members", &self.members.len())
            .field("seed", &self.seed)
            .finish()
    }
}

impl SegmentExecutor {
    /// Materializes the operators (and weights) for `members` of `graph`.
    pub fn new(graph: Arc<DnnGraph>, seed: u64, members: &[NodeId]) -> Self {
        let mut sorted = members.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let borrowed = Executor::new(&graph, seed);
        let ops = sorted
            .iter()
            .map(|&id| (id, borrowed.build_op(id)))
            .collect();
        Self {
            graph,
            seed,
            members: sorted,
            ops,
        }
    }

    /// The graph this segment belongs to.
    pub fn graph(&self) -> &Arc<DnnGraph> {
        &self.graph
    }

    /// The weight seed (matches the whole-network executor's).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The segment members, ascending.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Executes the segment with prebuilt operators; same contract as
    /// [`Executor::run_segment`]: `boundary` provides the tensors of
    /// vertices outside the segment (or already-computed members such as
    /// `v0`), and the result maps every member whose output is needed
    /// outside the segment (crossing tensors plus graph outputs).
    ///
    /// Takes `boundary` by value — this runs per frame on the streaming
    /// hot path, where cloning every crossing tensor again would be pure
    /// wasted memory traffic; callers that reuse a boundary clone at the
    /// call site.
    ///
    /// # Panics
    ///
    /// Panics when a required predecessor tensor is neither computable
    /// nor provided.
    pub fn run(&self, boundary: HashMap<NodeId, Tensor>) -> HashMap<NodeId, Tensor> {
        let mut values = boundary;
        walk_segment(
            &self.graph,
            &self.members,
            &mut values,
            |_, _| false,
            |id, inputs| self.ops[&id].apply(inputs),
        );
        crossing_tensors(&self.graph, &self.members, &values)
    }

    /// Executes the segment for a whole batch of frames in **one
    /// executor call**, returning one crossing map per frame (same
    /// order). The walk is *operator-major*: each member's prebuilt
    /// operator is applied to every frame before the next member runs,
    /// so a layer's weights are loaded once per batch instead of once
    /// per frame — the amortization a batching pipeline stage buys on
    /// weight-heavy segments.
    ///
    /// Per-frame results are bit-identical to [`run`](Self::run): only
    /// the loop order changes, never the arithmetic.
    ///
    /// # Panics
    ///
    /// Panics when a required predecessor tensor is neither computable
    /// nor provided for some frame.
    pub fn run_batch(
        &self,
        boundaries: Vec<HashMap<NodeId, Tensor>>,
    ) -> Vec<HashMap<NodeId, Tensor>> {
        let mut frames = boundaries;
        for &id in &self.members {
            let node = self.graph.node(id);
            for values in &mut frames {
                if values.contains_key(&id) {
                    continue; // provided as boundary input
                }
                let inputs: Vec<&Tensor> = node
                    .preds
                    .iter()
                    .map(|p| {
                        values.get(p).unwrap_or_else(|| {
                            panic!(
                                "batched segment execution of {} (`{}`) missing predecessor {}",
                                id, node.name, p
                            )
                        })
                    })
                    .collect();
                let out = self.ops[&id].apply(&inputs);
                debug_assert_eq!(out.shape3(), node.shape, "shape inference mismatch at {id}");
                values.insert(id, out);
            }
        }
        frames
            .iter()
            .map(|values| crossing_tensors(&self.graph, &self.members, values))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d3_tensor::ops::ConvSpec;
    use d3_tensor::{max_abs_diff, Shape3};

    fn small_net() -> DnnGraph {
        let mut g = DnnGraph::new("small", Shape3::new(3, 8, 8));
        let c1 = g.chain(
            "c1",
            LayerKind::Conv {
                spec: ConvSpec::new(3, 4, 3, 1, 1),
                batch_norm: true,
                activation: Activation::Relu,
            },
            g.input(),
        );
        let a = g.chain(
            "a",
            LayerKind::Conv {
                spec: ConvSpec::new(4, 4, 3, 1, 1),
                batch_norm: false,
                activation: Activation::Relu,
            },
            c1,
        );
        let b = g.chain(
            "b",
            LayerKind::Conv {
                spec: ConvSpec::new(4, 4, 1, 1, 0),
                batch_norm: false,
                activation: Activation::None,
            },
            c1,
        );
        let sum = g.add_layer("sum", LayerKind::Add, &[a, b]).unwrap();
        let gap = g.chain("gap", LayerKind::GlobalAvgPool, sum);
        let fc = g.chain(
            "fc",
            LayerKind::Dense {
                in_dim: 4,
                out_dim: 10,
                activation: Activation::None,
            },
            gap,
        );
        g.chain("softmax", LayerKind::Softmax, fc);
        g
    }

    #[test]
    fn run_produces_output_shape() {
        let g = small_net();
        let exec = Executor::new(&g, 42);
        let out = exec.run(&Tensor::random(3, 8, 8, 1));
        assert_eq!(out.shape(), (10, 1, 1));
        let sum: f32 = out.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5, "softmax output sums to 1");
    }

    #[test]
    fn run_is_deterministic() {
        let g = small_net();
        let input = Tensor::random(3, 8, 8, 7);
        let a = Executor::new(&g, 42).run(&input);
        let b = Executor::new(&g, 42).run(&input);
        assert_eq!(a, b);
        let c = Executor::new(&g, 43).run(&input);
        assert_ne!(a, c, "different seed -> different weights");
    }

    #[test]
    fn segmented_execution_matches_whole() {
        // Split the net at an arbitrary frontier and verify the two-stage
        // result equals single-stage inference — the core guarantee the
        // online execution engine relies on.
        let g = small_net();
        let exec = Executor::new(&g, 42);
        let input = Tensor::random(3, 8, 8, 3);
        let whole = exec.run(&input);

        // Segment 1: v0, c1(1), a(2). Segment 2: b(3), sum(4), gap, fc, sm.
        let seg1: Vec<NodeId> = vec![NodeId(0), NodeId(1), NodeId(2)];
        let seg2: Vec<NodeId> = (3..g.len()).map(NodeId).collect();
        let mut boundary = HashMap::new();
        boundary.insert(g.input(), input.clone());
        let cross = exec.run_segment(&seg1, &boundary);
        // c1 feeds b (outside seg1) and a feeds sum (outside seg1): both cross.
        assert!(cross.contains_key(&NodeId(1)) && cross.contains_key(&NodeId(2)));
        let out2 = exec.run_segment(&seg2, &cross);
        let final_out = out2.get(&NodeId(g.len() - 1)).unwrap();
        assert_eq!(max_abs_diff(final_out, &whole), Some(0.0));
    }

    #[test]
    fn run_segment_reports_only_crossing_tensors() {
        let g = small_net();
        let exec = Executor::new(&g, 42);
        let mut boundary = HashMap::new();
        boundary.insert(g.input(), Tensor::random(3, 8, 8, 1));
        let all: Vec<NodeId> = g.ids().collect();
        let out = exec.run_segment(&all, &boundary);
        assert_eq!(out.len(), 1, "single-output graph crosses one tensor");
    }

    #[test]
    #[should_panic(expected = "missing predecessor")]
    fn missing_boundary_panics() {
        let g = small_net();
        let exec = Executor::new(&g, 42);
        let seg: Vec<NodeId> = vec![NodeId(4)];
        exec.run_segment(&seg, &HashMap::new());
    }

    #[test]
    #[should_panic(expected = "input shape mismatch")]
    fn wrong_input_shape_panics() {
        let g = small_net();
        Executor::new(&g, 42).run(&Tensor::zeros(3, 9, 9));
    }

    #[test]
    fn segment_executor_matches_borrowed_executor() {
        let g = Arc::new(small_net());
        let exec = Executor::new(&g, 42);
        let input = Tensor::random(3, 8, 8, 11);
        let mut boundary = HashMap::new();
        boundary.insert(g.input(), input.clone());

        let seg1: Vec<NodeId> = vec![NodeId(0), NodeId(1), NodeId(2)];
        let seg2: Vec<NodeId> = (3..g.len()).map(NodeId).collect();
        let cross_ref = exec.run_segment(&seg1, &boundary);

        let owned1 = SegmentExecutor::new(g.clone(), 42, &seg1);
        let cross = owned1.run(boundary.clone());
        assert_eq!(cross.len(), cross_ref.len());
        for (id, t) in &cross_ref {
            assert_eq!(max_abs_diff(&cross[id], t), Some(0.0), "diverged at {id}");
        }

        let owned2 = SegmentExecutor::new(g.clone(), 42, &seg2);
        let out = owned2.run(cross.clone());
        let whole = exec.run(&input);
        let final_out = out.get(&NodeId(g.len() - 1)).unwrap();
        assert_eq!(max_abs_diff(final_out, &whole), Some(0.0));
    }

    #[test]
    fn run_batch_matches_per_frame_run() {
        let g = Arc::new(small_net());
        let members: Vec<NodeId> = g.ids().collect();
        let seg = SegmentExecutor::new(g.clone(), 42, &members);
        let boundaries: Vec<HashMap<NodeId, Tensor>> = (0..4)
            .map(|k| {
                let mut b = HashMap::new();
                b.insert(g.input(), Tensor::random(3, 8, 8, 60 + k));
                b
            })
            .collect();
        let batched = seg.run_batch(boundaries.clone());
        assert_eq!(batched.len(), boundaries.len());
        for (k, boundary) in boundaries.into_iter().enumerate() {
            let single = seg.run(boundary);
            assert_eq!(batched[k].len(), single.len(), "frame {k} crossing set");
            for (id, t) in &single {
                assert_eq!(
                    max_abs_diff(&batched[k][id], t),
                    Some(0.0),
                    "frame {k} diverged at {id}"
                );
            }
        }
    }

    #[test]
    fn segment_executor_is_send_sync_and_cloneable() {
        fn assert_send_sync<T: Send + Sync + Clone + 'static>() {}
        assert_send_sync::<SegmentExecutor>();
        let g = Arc::new(small_net());
        let members: Vec<NodeId> = g.ids().collect();
        let owned = SegmentExecutor::new(g, 42, &members);
        let clone = owned.clone();
        // Clones share the graph and run independently across threads.
        let input = Tensor::random(3, 8, 8, 2);
        let mut boundary = HashMap::new();
        boundary.insert(clone.graph().input(), input.clone());
        let handle = std::thread::spawn(move || clone.run(boundary));
        let mut boundary2 = HashMap::new();
        boundary2.insert(owned.graph().input(), input);
        let here = owned.run(boundary2);
        let there = handle.join().unwrap();
        for (id, t) in &here {
            assert_eq!(max_abs_diff(&there[id], t), Some(0.0));
        }
    }
}
